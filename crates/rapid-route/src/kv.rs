//! The replicated in-memory KV data plane.
//!
//! [`KvNode`] is a sans-io state machine, like the membership node it
//! rides on: it consumes view changes, peer messages, client operations
//! and ticks, and emits [`KvOut`] actions (sends and client results).
//! The same state machine runs under the deterministic simulator
//! ([`crate::sim::KvSimActor`]) and the real TCP transport
//! ([`crate::real::KvRuntime`]).
//!
//! Protocol (all placement-driven, zero coordination messages):
//!
//! * **Routing** — any node accepts a client op, computes the partition's
//!   leader from its placement, and forwards. Leaders are a pure function
//!   of the view, so there is no leader election and no lease.
//! * **Writes** — the leader versions the write, applies it locally, and
//!   replicates to every other replica; the client is acked only after
//!   *all* replicas confirmed, so an acked write survives any failure
//!   that leaves at least one replica alive.
//! * **Reads** — served by the leader (which holds every acked write).
//! * **Rebalance** — on a view change every node recomputes placement,
//!   diffs it against the previous one ([`RebalancePlan`]) and the
//!   deterministically chosen surviving source pushes each moved
//!   partition to its new replicas. Gets on a partition awaiting handoff
//!   fail (retryable) rather than serving an empty store.

use std::sync::Arc;

use rapid_core::config::{Configuration, Member};
use rapid_core::hash::{DetHashMap, DetHashSet};
use rapid_core::id::Endpoint;

use crate::placement::{partition_of, Placement, PlacementCache, PlacementConfig, RebalancePlan};

/// One stored entry: value plus its replication version.
pub type Entry = (String, u64);

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// Data-plane messages exchanged between KV nodes. On the real transport
/// these ride in opaque app frames; in the simulator they share the
/// simulated network with membership traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum KvMsg {
    /// Client write, forwarded from the coordinator to the leader.
    Put {
        /// Coordinator-local request id.
        req: u64,
        /// The coordinator to ack.
        origin: Endpoint,
        /// Key.
        key: String,
        /// Value.
        val: String,
    },
    /// Leader's write verdict, routed back to the coordinator.
    PutAck {
        /// Request id.
        req: u64,
        /// Whether the write was fully replicated.
        ok: bool,
        /// Version assigned to the write (0 when `!ok`).
        version: u64,
    },
    /// Client read, forwarded from the coordinator to the leader.
    Get {
        /// Coordinator-local request id.
        req: u64,
        /// The coordinator to answer.
        origin: Endpoint,
        /// Key.
        key: String,
    },
    /// Leader's read answer.
    GetResp {
        /// Request id.
        req: u64,
        /// `false` when the receiver could not serve (not the leader, or
        /// still awaiting a handoff) — a retryable failure, not a miss.
        ok: bool,
        /// Whether the key exists.
        found: bool,
        /// The value (empty when absent).
        val: String,
        /// The value's version (0 when absent).
        version: u64,
    },
    /// Leader-to-replica write propagation.
    Replicate {
        /// Partition of the key.
        partition: u32,
        /// Leader-local request id.
        req: u64,
        /// The leader to confirm to.
        leader: Endpoint,
        /// Key.
        key: String,
        /// Value.
        val: String,
        /// Version assigned by the leader.
        version: u64,
    },
    /// Replica's write confirmation.
    RepAck {
        /// Leader-local request id.
        req: u64,
    },
    /// Bulk partition transfer during rebalance.
    Handoff {
        /// The partition being transferred.
        partition: u32,
        /// `(key, value, version)` triples; receivers merge by highest
        /// version, so handoffs commute with concurrent writes.
        entries: Vec<(String, String, u64)>,
    },
}

const TAG_PUT: u8 = 1;
const TAG_PUT_ACK: u8 = 2;
const TAG_GET: u8 = 3;
const TAG_GET_RESP: u8 = 4;
const TAG_REPLICATE: u8 = 5;
const TAG_REP_ACK: u8 = 6;
const TAG_HANDOFF: u8 = 7;

fn put_ep(buf: &mut Vec<u8>, ep: &Endpoint) {
    let host = ep.host().as_bytes();
    buf.extend_from_slice(&(host.len() as u16).to_le_bytes());
    buf.extend_from_slice(host);
    buf.extend_from_slice(&ep.port().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn ep_len(ep: &Endpoint) -> usize {
    2 + ep.host_len() + 2
}

fn str_len(s: &str) -> usize {
    4 + s.len()
}

/// Encoded size of a message, for simulator bandwidth accounting and
/// rebalance byte metering — kept in lockstep with [`encode`].
pub fn encoded_len(msg: &KvMsg) -> usize {
    1 + match msg {
        KvMsg::Put { origin, key, val, .. } => 8 + ep_len(origin) + str_len(key) + str_len(val),
        KvMsg::PutAck { .. } => 8 + 1 + 8,
        KvMsg::Get { origin, key, .. } => 8 + ep_len(origin) + str_len(key),
        KvMsg::GetResp { val, .. } => 8 + 1 + 1 + str_len(val) + 8,
        KvMsg::Replicate {
            leader, key, val, ..
        } => 4 + 8 + ep_len(leader) + str_len(key) + str_len(val) + 8,
        KvMsg::RepAck { .. } => 8,
        KvMsg::Handoff { entries, .. } => {
            4 + 4
                + entries
                    .iter()
                    .map(|(k, v, _)| str_len(k) + str_len(v) + 8)
                    .sum::<usize>()
        }
    }
}

/// Encodes a message into `buf` (appended).
pub fn encode(msg: &KvMsg, buf: &mut Vec<u8>) {
    match msg {
        KvMsg::Put {
            req,
            origin,
            key,
            val,
        } => {
            buf.push(TAG_PUT);
            buf.extend_from_slice(&req.to_le_bytes());
            put_ep(buf, origin);
            put_str(buf, key);
            put_str(buf, val);
        }
        KvMsg::PutAck { req, ok, version } => {
            buf.push(TAG_PUT_ACK);
            buf.extend_from_slice(&req.to_le_bytes());
            buf.push(*ok as u8);
            buf.extend_from_slice(&version.to_le_bytes());
        }
        KvMsg::Get { req, origin, key } => {
            buf.push(TAG_GET);
            buf.extend_from_slice(&req.to_le_bytes());
            put_ep(buf, origin);
            put_str(buf, key);
        }
        KvMsg::GetResp {
            req,
            ok,
            found,
            val,
            version,
        } => {
            buf.push(TAG_GET_RESP);
            buf.extend_from_slice(&req.to_le_bytes());
            buf.push(*ok as u8);
            buf.push(*found as u8);
            put_str(buf, val);
            buf.extend_from_slice(&version.to_le_bytes());
        }
        KvMsg::Replicate {
            partition,
            req,
            leader,
            key,
            val,
            version,
        } => {
            buf.push(TAG_REPLICATE);
            buf.extend_from_slice(&partition.to_le_bytes());
            buf.extend_from_slice(&req.to_le_bytes());
            put_ep(buf, leader);
            put_str(buf, key);
            put_str(buf, val);
            buf.extend_from_slice(&version.to_le_bytes());
        }
        KvMsg::RepAck { req } => {
            buf.push(TAG_REP_ACK);
            buf.extend_from_slice(&req.to_le_bytes());
        }
        KvMsg::Handoff { partition, entries } => {
            buf.push(TAG_HANDOFF);
            buf.extend_from_slice(&partition.to_le_bytes());
            buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v, ver) in entries {
                put_str(buf, k);
                put_str(buf, v);
                buf.extend_from_slice(&ver.to_le_bytes());
            }
        }
    }
}

struct KvReader<'a> {
    buf: &'a [u8],
}

impl<'a> KvReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() < n {
            return Err(format!("kv decode: need {n}, have {}", self.buf.len()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn ep(&mut self) -> Result<Endpoint, String> {
        let len = self.u16()? as usize;
        // Same hostile-peer hygiene as the membership decoder: cap the
        // per-name length and refuse to grow the process-wide interner
        // past the distinct-hosts limit (interning is permanent).
        if len > rapid_core::wire::MAX_WIRE_HOST_LEN {
            return Err(format!(
                "kv decode: host name of {len} bytes exceeds cap {}",
                rapid_core::wire::MAX_WIRE_HOST_LEN
            ));
        }
        let host = std::str::from_utf8(self.take(len)?).map_err(|_| "kv decode: bad host")?;
        let port = self.u16()?;
        Endpoint::new_bounded(host, port, rapid_core::wire::MAX_DISTINCT_WIRE_HOSTS).map_err(
            |n| {
                format!(
                    "kv decode: host {host:?} would grow the interner past the \
                     distinct-hosts cap ({n} >= {})",
                    rapid_core::wire::MAX_DISTINCT_WIRE_HOSTS
                )
            },
        )
    }
    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        // Item guard: a forged length cannot out-size the buffer.
        let s = std::str::from_utf8(self.take(len)?).map_err(|_| "kv decode: bad utf8")?;
        Ok(s.to_string())
    }
}

/// Decodes one message.
pub fn decode(bytes: &[u8]) -> Result<KvMsg, String> {
    let mut r = KvReader { buf: bytes };
    let msg = match r.u8()? {
        TAG_PUT => KvMsg::Put {
            req: r.u64()?,
            origin: r.ep()?,
            key: r.str()?,
            val: r.str()?,
        },
        TAG_PUT_ACK => KvMsg::PutAck {
            req: r.u64()?,
            ok: r.u8()? == 1,
            version: r.u64()?,
        },
        TAG_GET => KvMsg::Get {
            req: r.u64()?,
            origin: r.ep()?,
            key: r.str()?,
        },
        TAG_GET_RESP => KvMsg::GetResp {
            req: r.u64()?,
            ok: r.u8()? == 1,
            found: r.u8()? == 1,
            val: r.str()?,
            version: r.u64()?,
        },
        TAG_REPLICATE => KvMsg::Replicate {
            partition: r.u32()?,
            req: r.u64()?,
            leader: r.ep()?,
            key: r.str()?,
            val: r.str()?,
            version: r.u64()?,
        },
        TAG_REP_ACK => KvMsg::RepAck { req: r.u64()? },
        TAG_HANDOFF => {
            let partition = r.u32()?;
            let count = r.u32()? as usize;
            if count > r.buf.len() / 16 + 1 {
                return Err(format!("kv decode: absurd handoff count {count}"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let k = r.str()?;
                let v = r.str()?;
                let ver = r.u64()?;
                entries.push((k, v, ver));
            }
            KvMsg::Handoff { partition, entries }
        }
        other => return Err(format!("kv decode: unknown tag {other}")),
    };
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Client-visible results and stats
// ---------------------------------------------------------------------------

/// The final result of a client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOutcome {
    /// The write reached every replica.
    Acked {
        /// Version assigned to the write.
        version: u64,
    },
    /// The read found the key.
    Found {
        /// The value.
        val: String,
        /// The value's version.
        version: u64,
    },
    /// The read completed and the key does not exist.
    Missing,
    /// The operation failed or timed out (retryable).
    Failed,
}

/// An action the host must perform for the KV node.
#[derive(Clone, Debug)]
pub enum KvOut {
    /// Transmit a data-plane message.
    Send(Endpoint, KvMsg),
    /// A client operation completed.
    Done(u64, KvOutcome),
}

/// Data-plane counters.
///
/// `puts_*`/`gets_*`/`handoffs_*`/`bytes_moved`/`partitions_moved` are
/// per-node and sum across a cluster; `rebalances`, `partitions_lost`
/// and `leader_changes` are plan-level (every node computes the same
/// plan) and aggregate by max — [`KvStats::absorb`] applies those rules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Writes acked to clients by this coordinator.
    pub puts_acked: u64,
    /// Writes failed/timed out at this coordinator.
    pub puts_failed: u64,
    /// Reads completed (found or missing) at this coordinator.
    pub gets_ok: u64,
    /// Reads failed/timed out at this coordinator.
    pub gets_failed: u64,
    /// View changes processed by the data plane.
    pub rebalances: u64,
    /// Handoff messages this node pushed as a rebalance source.
    pub handoffs_sent: u64,
    /// Handoff messages applied.
    pub handoffs_applied: u64,
    /// Encoded bytes of handoff traffic this node pushed.
    pub bytes_moved: u64,
    /// Distinct partition copies this node pushed.
    pub partitions_moved: u64,
    /// Partitions whose whole replica set vanished in one view change.
    pub partitions_lost: u64,
    /// Partitions whose leader moved across all rebalances.
    pub leader_changes: u64,
}

impl KvStats {
    /// Folds another node's counters into this one (cluster aggregate).
    pub fn absorb(&mut self, other: &KvStats) {
        self.puts_acked += other.puts_acked;
        self.puts_failed += other.puts_failed;
        self.gets_ok += other.gets_ok;
        self.gets_failed += other.gets_failed;
        self.handoffs_sent += other.handoffs_sent;
        self.handoffs_applied += other.handoffs_applied;
        self.bytes_moved += other.bytes_moved;
        self.partitions_moved += other.partitions_moved;
        self.rebalances = self.rebalances.max(other.rebalances);
        self.partitions_lost = self.partitions_lost.max(other.partitions_lost);
        self.leader_changes = self.leader_changes.max(other.leader_changes);
    }
}

// ---------------------------------------------------------------------------
// The state machine
// ---------------------------------------------------------------------------

struct PendingClient {
    req: u64,
    deadline: u64,
    is_put: bool,
}

struct PendingPut {
    origin: Endpoint,
    /// The coordinator's request id (leader-side replication waits are
    /// keyed by a *leader-local* id — coordinator ids from different
    /// origins can collide).
    client_req: u64,
    /// Replicas whose ack is still outstanding, by identity — a
    /// duplicated RepAck (the simulator's `duplicate` fault) must not
    /// satisfy the quorum early.
    waiting: Vec<Endpoint>,
    version: u64,
    deadline: u64,
}

/// The per-process replicated-KV state machine.
pub struct KvNode {
    me: Member,
    spec: PlacementConfig,
    op_timeout_ms: u64,
    cache: Option<PlacementCache>,
    view: Option<(Arc<Configuration>, Arc<Placement>)>,
    store: DetHashMap<u32, DetHashMap<String, Entry>>,
    /// Partitions this node was just assigned and whose handoff has not
    /// arrived yet: reads fail retryably instead of serving emptiness.
    awaiting: DetHashMap<u32, u64>,
    /// Set on processes that join an *established* cluster: their first
    /// view must treat every owned partition as awaiting handoff (the
    /// cluster may hold data), unlike a fresh static/seed start where no
    /// data exists anywhere.
    expect_initial_handoffs: bool,
    /// Handoffs that arrived *before* the first view installed (sources
    /// push as soon as they install the new view, which can race the
    /// joiner's own install) — these partitions are already served.
    early_handoffs: DetHashSet<u32>,
    pending_client: Vec<PendingClient>,
    pending_rep: DetHashMap<u64, PendingPut>,
    seqs: DetHashMap<u32, u64>,
    next_req: u64,
    stats: KvStats,
}

impl KvNode {
    /// Creates the data plane for process `me`. `cache` lets co-hosted
    /// nodes (the simulator) share placement computations.
    pub fn new(
        me: Member,
        spec: PlacementConfig,
        op_timeout_ms: u64,
        cache: Option<PlacementCache>,
    ) -> KvNode {
        KvNode {
            me,
            spec,
            op_timeout_ms,
            cache,
            view: None,
            store: DetHashMap::default(),
            awaiting: DetHashMap::default(),
            expect_initial_handoffs: false,
            early_handoffs: DetHashSet::default(),
            pending_client: Vec::new(),
            pending_rep: DetHashMap::default(),
            seqs: DetHashMap::default(),
            next_req: 1,
            stats: KvStats::default(),
        }
    }

    /// Marks this node as joining an established cluster: its first
    /// installed view treats every partition it owns as awaiting a
    /// handoff, so it cannot serve reads from its (empty) store while
    /// the plan-chosen sources are still pushing. Sources push even for
    /// empty partitions, so the guard clears promptly; if a source died
    /// mid-push, the usual grace period applies.
    pub fn expect_initial_handoffs(mut self) -> KvNode {
        self.expect_initial_handoffs = true;
        self
    }

    /// This node's identity.
    pub fn me(&self) -> &Member {
        &self.me
    }

    /// Counters so far.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// The current placement, if a view was installed.
    pub fn placement(&self) -> Option<&Arc<Placement>> {
        self.view.as_ref().map(|(_, p)| p)
    }

    /// Number of keys currently stored locally (all partitions).
    pub fn local_keys(&self) -> usize {
        self.store.values().map(|m| m.len()).sum()
    }

    /// Whether any partition is still awaiting a rebalance handoff.
    pub fn rebalance_settled(&self) -> bool {
        self.awaiting.is_empty()
    }

    fn placement_for(&self, config: &Arc<Configuration>) -> Arc<Placement> {
        match &self.cache {
            Some(c) => c.get(config, &self.spec),
            None => Arc::new(Placement::compute(config, &self.spec)),
        }
    }

    /// Installs a new membership view — the subscription hook the whole
    /// subsystem hangs off. Recomputes placement, diffs, and pushes the
    /// handoffs this node deterministically owns as a source.
    pub fn on_view(&mut self, config: Arc<Configuration>, now: u64, out: &mut Vec<KvOut>) {
        let placement = self.placement_for(&config);
        if self.view.is_none() && self.expect_initial_handoffs {
            // First view after joining an established cluster: everything
            // this node now owns may hold data elsewhere.
            if let Some(my_rank) = config.rank_of(self.me.id) {
                for p in 0..placement.partitions() {
                    if placement.replicas(p).contains(&(my_rank as u32))
                        && !self.early_handoffs.contains(&p)
                    {
                        self.awaiting.insert(p, now + 2 * self.op_timeout_ms);
                    }
                }
            }
            self.early_handoffs = DetHashSet::default();
        }
        if let Some((old_cfg, old_pl)) = self.view.take() {
            if old_cfg.id() == config.id() {
                self.view = Some((old_cfg, old_pl));
                return;
            }
            let plan = RebalancePlan::diff(&old_pl, &old_cfg, &placement, &config);
            self.stats.rebalances += 1;
            self.stats.partitions_lost += plan.lost.len() as u64;
            self.stats.leader_changes += plan.leader_changes as u64;
            let mut last_partition = None;
            for mv in &plan.moves {
                // Never push a partition this node is itself still
                // awaiting: the plan cannot see local handoff progress,
                // and pushing an empty store would clear the receiver's
                // guard with wrong (missing) data. The receiver falls
                // back to its grace period instead.
                if mv.source == self.me.addr && !self.awaiting.contains_key(&mv.partition) {
                    let entries: Vec<(String, String, u64)> = self
                        .store
                        .get(&mv.partition)
                        .map(|m| {
                            let mut v: Vec<_> = m
                                .iter()
                                .map(|(k, (val, ver))| (k.clone(), val.clone(), *ver))
                                .collect();
                            v.sort();
                            v
                        })
                        .unwrap_or_default();
                    let msg = KvMsg::Handoff {
                        partition: mv.partition,
                        entries,
                    };
                    self.stats.handoffs_sent += 1;
                    self.stats.bytes_moved += encoded_len(&msg) as u64;
                    if last_partition != Some(mv.partition) {
                        self.stats.partitions_moved += 1;
                        last_partition = Some(mv.partition);
                    }
                    out.push(KvOut::Send(mv.to, msg));
                }
                if mv.to == self.me.addr {
                    // Expect data; until it lands, reads on this partition
                    // fail retryably. Budget: two op timeouts, then serve
                    // whatever arrived (the source may have died mid-push).
                    self.awaiting
                        .insert(mv.partition, now + 2 * self.op_timeout_ms);
                }
            }
            // Drop partitions this node no longer replicates.
            if let Some(my_rank) = config.rank_of(self.me.id) {
                let keep: DetHashSet<u32> = (0..placement.partitions())
                    .filter(|&p| placement.replicas(p).contains(&(my_rank as u32)))
                    .collect();
                self.store.retain(|p, _| keep.contains(p));
                self.awaiting.retain(|p, _| keep.contains(p));
            } else {
                // Not in the view at all (kicked/left): nothing to serve.
                self.store.clear();
                self.awaiting.clear();
            }
        }
        self.view = Some((config, placement));
    }

    fn leader_addr(&self, partition: u32) -> Option<Endpoint> {
        let (cfg, pl) = self.view.as_ref()?;
        let rank = pl.leader(partition) as usize;
        Some(cfg.members()[rank].addr)
    }

    fn is_leader(&self, partition: u32) -> bool {
        let Some((cfg, pl)) = self.view.as_ref() else {
            return false;
        };
        cfg.rank_of(self.me.id) == Some(pl.leader(partition) as usize)
    }

    fn replica_addrs_except_me(&self, partition: u32) -> Vec<Endpoint> {
        let Some((cfg, pl)) = self.view.as_ref() else {
            return Vec::new();
        };
        pl.replicas(partition)
            .iter()
            .map(|&i| cfg.members()[i as usize].addr)
            .filter(|a| *a != self.me.addr)
            .collect()
    }

    fn resolve_client(&mut self, req: u64, outcome: KvOutcome, out: &mut Vec<KvOut>) {
        let Some(pos) = self.pending_client.iter().position(|p| p.req == req) else {
            return; // Already timed out.
        };
        let pc = self.pending_client.swap_remove(pos);
        match (&outcome, pc.is_put) {
            (KvOutcome::Acked { .. }, _) => self.stats.puts_acked += 1,
            (KvOutcome::Failed, true) => self.stats.puts_failed += 1,
            (KvOutcome::Failed, false) => self.stats.gets_failed += 1,
            (_, false) => self.stats.gets_ok += 1,
            _ => {}
        }
        out.push(KvOut::Done(req, outcome));
    }

    /// Begins a client write through this node as coordinator; the result
    /// arrives later as [`KvOut::Done`] with the returned request id.
    pub fn client_put(&mut self, key: &str, val: &str, now: u64, out: &mut Vec<KvOut>) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.pending_client.push(PendingClient {
            req,
            deadline: now + self.op_timeout_ms,
            is_put: true,
        });
        let partition = partition_of(key, self.spec.partitions);
        match self.leader_addr(partition) {
            None => self.resolve_client(req, KvOutcome::Failed, out),
            Some(leader) if leader == self.me.addr => {
                self.leader_put(req, self.me.addr, key, val, now, out);
            }
            Some(leader) => out.push(KvOut::Send(
                leader,
                KvMsg::Put {
                    req,
                    origin: self.me.addr,
                    key: key.to_string(),
                    val: val.to_string(),
                },
            )),
        }
        req
    }

    /// Begins a client read through this node as coordinator.
    pub fn client_get(&mut self, key: &str, now: u64, out: &mut Vec<KvOut>) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        self.pending_client.push(PendingClient {
            req,
            deadline: now + self.op_timeout_ms,
            is_put: false,
        });
        let partition = partition_of(key, self.spec.partitions);
        match self.leader_addr(partition) {
            None => self.resolve_client(req, KvOutcome::Failed, out),
            Some(leader) if leader == self.me.addr => {
                let resp = self.leader_get_resp(req, key);
                self.finish_get(resp, out);
            }
            Some(leader) => out.push(KvOut::Send(
                leader,
                KvMsg::Get {
                    req,
                    origin: self.me.addr,
                    key: key.to_string(),
                },
            )),
        }
        req
    }

    fn put_fail(&mut self, req: u64, origin: Endpoint, out: &mut Vec<KvOut>) {
        if origin == self.me.addr {
            self.resolve_client(req, KvOutcome::Failed, out);
        } else {
            out.push(KvOut::Send(
                origin,
                KvMsg::PutAck {
                    req,
                    ok: false,
                    version: 0,
                },
            ));
        }
    }

    fn put_ack(&mut self, req: u64, origin: Endpoint, version: u64, out: &mut Vec<KvOut>) {
        if origin == self.me.addr {
            self.resolve_client(req, KvOutcome::Acked { version }, out);
        } else {
            out.push(KvOut::Send(
                origin,
                KvMsg::PutAck {
                    req,
                    ok: true,
                    version,
                },
            ));
        }
    }

    fn leader_put(
        &mut self,
        req: u64,
        origin: Endpoint,
        key: &str,
        val: &str,
        now: u64,
        out: &mut Vec<KvOut>,
    ) {
        let partition = partition_of(key, self.spec.partitions);
        if !self.is_leader(partition) {
            return self.put_fail(req, origin, out);
        }
        let config_seq = self.view.as_ref().map(|(c, _)| c.seq()).unwrap_or(0);
        // Versions are (config seq, per-partition counter); the counter
        // saturates rather than wrapping into the seq bits, so an absurd
        // write volume stalls (newer writes refused as stale) instead of
        // silently regressing versions.
        let seq = self.seqs.entry(partition).or_insert(0);
        if *seq < u32::MAX as u64 {
            *seq += 1;
        }
        let version = (config_seq << 32) | *seq;
        self.store
            .entry(partition)
            .or_default()
            .insert(key.to_string(), (val.to_string(), version));
        let others = self.replica_addrs_except_me(partition);
        if others.is_empty() {
            return self.put_ack(req, origin, version, out);
        }
        // Leader-local id for the replication round: coordinator request
        // ids are only unique per origin, and two origins can race the
        // same leader.
        let rep = self.next_req;
        self.next_req += 1;
        self.pending_rep.insert(
            rep,
            PendingPut {
                origin,
                client_req: req,
                waiting: others.clone(),
                version,
                deadline: now + self.op_timeout_ms,
            },
        );
        for r in others {
            out.push(KvOut::Send(
                r,
                KvMsg::Replicate {
                    partition,
                    req: rep,
                    leader: self.me.addr,
                    key: key.to_string(),
                    val: val.to_string(),
                    version,
                },
            ));
        }
    }

    fn leader_get_resp(&self, req: u64, key: &str) -> KvMsg {
        let partition = partition_of(key, self.spec.partitions);
        if !self.is_leader(partition) || self.awaiting.contains_key(&partition) {
            return KvMsg::GetResp {
                req,
                ok: false,
                found: false,
                val: String::new(),
                version: 0,
            };
        }
        match self.store.get(&partition).and_then(|m| m.get(key)) {
            Some((val, version)) => KvMsg::GetResp {
                req,
                ok: true,
                found: true,
                val: val.clone(),
                version: *version,
            },
            None => KvMsg::GetResp {
                req,
                ok: true,
                found: false,
                val: String::new(),
                version: 0,
            },
        }
    }

    fn finish_get(&mut self, resp: KvMsg, out: &mut Vec<KvOut>) {
        let KvMsg::GetResp {
            req,
            ok,
            found,
            val,
            version,
        } = resp
        else {
            unreachable!("finish_get only consumes GetResp");
        };
        let outcome = match (ok, found) {
            (false, _) => KvOutcome::Failed,
            (true, false) => KvOutcome::Missing,
            (true, true) => KvOutcome::Found { val, version },
        };
        self.resolve_client(req, outcome, out);
    }

    fn merge(&mut self, partition: u32, key: String, val: String, version: u64) {
        let slot = self.store.entry(partition).or_default();
        match slot.get(&key) {
            Some((_, existing)) if *existing >= version => {}
            _ => {
                slot.insert(key, (val, version));
            }
        }
    }

    /// Handles a data-plane message from a peer.
    pub fn on_message(&mut self, from: Endpoint, msg: KvMsg, now: u64, out: &mut Vec<KvOut>) {
        match msg {
            KvMsg::Put {
                req,
                origin,
                key,
                val,
            } => self.leader_put(req, origin, &key, &val, now, out),
            KvMsg::PutAck { req, ok, version } => {
                let outcome = if ok {
                    KvOutcome::Acked { version }
                } else {
                    KvOutcome::Failed
                };
                self.resolve_client(req, outcome, out);
            }
            KvMsg::Get { req, origin, key } => {
                let resp = self.leader_get_resp(req, &key);
                out.push(KvOut::Send(origin, resp));
            }
            resp @ KvMsg::GetResp { .. } => self.finish_get(resp, out),
            KvMsg::Replicate {
                partition,
                req,
                leader,
                key,
                val,
                version,
            } => {
                self.merge(partition, key, val, version);
                out.push(KvOut::Send(leader, KvMsg::RepAck { req }));
            }
            KvMsg::RepAck { req } => {
                let done = match self.pending_rep.get_mut(&req) {
                    Some(p) => {
                        p.waiting.retain(|r| *r != from);
                        p.waiting.is_empty()
                    }
                    None => false,
                };
                if done {
                    let p = self.pending_rep.remove(&req).expect("checked above");
                    self.put_ack(p.client_req, p.origin, p.version, out);
                }
            }
            KvMsg::Handoff { partition, entries } => {
                for (k, v, ver) in entries {
                    self.merge(partition, k, v, ver);
                }
                self.awaiting.remove(&partition);
                if self.view.is_none() {
                    self.early_handoffs.insert(partition);
                }
                self.stats.handoffs_applied += 1;
            }
        }
    }

    /// Advances time: expires client ops, replication waits, and stale
    /// handoff expectations.
    pub fn on_tick(&mut self, now: u64, out: &mut Vec<KvOut>) {
        let expired: Vec<u64> = self
            .pending_client
            .iter()
            .filter(|p| p.deadline <= now)
            .map(|p| p.req)
            .collect();
        for req in expired {
            self.resolve_client(req, KvOutcome::Failed, out);
        }
        let rep_expired: Vec<u64> = self
            .pending_rep
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&req, _)| req)
            .collect();
        for req in rep_expired {
            if let Some(p) = self.pending_rep.remove(&req) {
                self.put_fail(p.client_req, p.origin, out);
            }
        }
        self.awaiting.retain(|_, deadline| *deadline > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_core::id::NodeId;

    fn members(n: usize) -> Vec<Member> {
        (0..n)
            .map(|i| {
                Member::new(
                    NodeId::from_u128(i as u128 + 1),
                    Endpoint::new(format!("kv-{i}"), 7100),
                )
            })
            .collect()
    }

    fn spec() -> PlacementConfig {
        PlacementConfig {
            partitions: 16,
            replication: 2,
        }
    }

    /// A little in-process cluster harness delivering KV messages
    /// synchronously, for unit-testing the state machine without a
    /// simulator.
    struct Mesh {
        nodes: Vec<KvNode>,
        config: Arc<Configuration>,
    }

    impl Mesh {
        fn new(n: usize) -> Mesh {
            let ms = members(n);
            let config = Configuration::bootstrap(ms.clone());
            let cache = PlacementCache::new();
            let mut nodes: Vec<KvNode> = ms
                .into_iter()
                .map(|m| KvNode::new(m, spec(), 1_000, Some(cache.clone())))
                .collect();
            let mut out = Vec::new();
            for node in &mut nodes {
                node.on_view(Arc::clone(&config), 0, &mut out);
            }
            assert!(out.is_empty(), "initial view must not emit traffic");
            Mesh { nodes, config }
        }

        fn idx_of(&self, addr: Endpoint) -> usize {
            self.nodes
                .iter()
                .position(|n| n.me().addr == addr)
                .expect("addressed node exists")
        }

        /// Runs the message pump to quiescence, returning client results.
        /// `origin` is the node whose outputs seeded the queue (the real
        /// hosts know the sender of every frame; RepAck quorums depend
        /// on it).
        fn pump_from(&mut self, origin: usize, seed: Vec<KvOut>) -> Vec<(u64, KvOutcome)> {
            let origin_addr = self.nodes[origin].me().addr;
            let mut queue: Vec<(Endpoint, KvOut)> =
                seed.into_iter().map(|item| (origin_addr, item)).collect();
            let mut done = Vec::new();
            let mut hops = 0;
            while let Some((from, item)) = queue.pop() {
                hops += 1;
                assert!(hops < 10_000, "message storm");
                match item {
                    KvOut::Done(req, outcome) => done.push((req, outcome)),
                    KvOut::Send(to, msg) => {
                        let idx = self.idx_of(to);
                        let mut out = Vec::new();
                        self.nodes[idx].on_message(from, msg, 0, &mut out);
                        queue.extend(out.into_iter().map(|item| (to, item)));
                    }
                }
            }
            done
        }
    }

    #[test]
    fn put_then_get_roundtrip_through_any_coordinator() {
        let mut mesh = Mesh::new(4);
        let mut out = Vec::new();
        let req = mesh.nodes[0].client_put("user:7", "v1", 0, &mut out);
        let results = mesh.pump_from(0, out);
        // The ack may have routed back through node 0's inbox; collect it.
        let acked = results
            .iter()
            .any(|(r, o)| *r == req && matches!(o, KvOutcome::Acked { .. }));
        assert!(acked, "put must ack: {results:?}");

        // Read through a different coordinator.
        let mut out = Vec::new();
        let req = mesh.nodes[3].client_get("user:7", 0, &mut out);
        let results = mesh.pump_from(3, out);
        assert!(
            results.iter().any(|(r, o)| *r == req
                && matches!(o, KvOutcome::Found { val, .. } if val == "v1")),
            "get must find the value: {results:?}"
        );

        // A missing key reads as Missing, not Failed.
        let mut out = Vec::new();
        let req = mesh.nodes[2].client_get("user:unseen", 0, &mut out);
        let results = mesh.pump_from(2, out);
        assert!(results
            .iter()
            .any(|(r, o)| *r == req && *o == KvOutcome::Missing));
    }

    #[test]
    fn acked_writes_reach_every_replica() {
        let mut mesh = Mesh::new(5);
        let mut out = Vec::new();
        mesh.nodes[1].client_put("k", "v", 0, &mut out);
        let results = mesh.pump_from(1, out);
        let version = match &results[..] {
            [(_, KvOutcome::Acked { version })] => *version,
            other => panic!("expected one ack, got {other:?}"),
        };
        let partition = partition_of("k", spec().partitions);
        let placement = mesh.nodes[0].placement().unwrap().clone();
        for &rank in placement.replicas(partition) {
            let node = &mesh.nodes[mesh.idx_of(mesh.config.members()[rank as usize].addr)];
            let entry = node
                .store
                .get(&partition)
                .and_then(|m| m.get("k"))
                .unwrap_or_else(|| panic!("replica rank {rank} missing the write"));
            assert_eq!(entry, &("v".to_string(), version));
        }
    }

    #[test]
    fn overwrites_bump_versions_monotonically() {
        let mut mesh = Mesh::new(3);
        let mut versions = Vec::new();
        for i in 0..4 {
            let mut out = Vec::new();
            mesh.nodes[0].client_put("key", &format!("v{i}"), 0, &mut out);
            for (_, o) in mesh.pump_from(0, out) {
                if let KvOutcome::Acked { version } = o {
                    versions.push(version);
                }
            }
        }
        assert_eq!(versions.len(), 4);
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
    }

    #[test]
    fn ops_without_a_view_fail_fast() {
        let m = members(1).remove(0);
        let mut kv = KvNode::new(m, spec(), 1_000, None);
        let mut out = Vec::new();
        let req = kv.client_put("k", "v", 0, &mut out);
        assert!(matches!(&out[..], [KvOut::Done(r, KvOutcome::Failed)] if *r == req));
        let mut out = Vec::new();
        let req = kv.client_get("k", 0, &mut out);
        assert!(matches!(&out[..], [KvOut::Done(r, KvOutcome::Failed)] if *r == req));
        assert_eq!(kv.stats().puts_failed, 1);
        assert_eq!(kv.stats().gets_failed, 1);
    }

    #[test]
    fn client_ops_time_out() {
        // A coordinator whose leader never answers (we just don't deliver
        // the forward) fails the op at its deadline.
        let mut mesh = Mesh::new(3);
        let mut out = Vec::new();
        // Find a key whose leader is NOT node 0 so the op stays pending.
        let key = (0..100)
            .map(|i| format!("probe-{i}"))
            .find(|k| {
                let p = partition_of(k, spec().partitions);
                mesh.nodes[0].leader_addr(p) != Some(mesh.nodes[0].me().addr)
            })
            .expect("some key routes away from node 0");
        let req = mesh.nodes[0].client_put(&key, "v", 0, &mut out);
        assert!(matches!(&out[..], [KvOut::Send(..)]));
        let mut tick_out = Vec::new();
        mesh.nodes[0].on_tick(999, &mut tick_out);
        assert!(tick_out.is_empty(), "not expired yet");
        mesh.nodes[0].on_tick(1_000, &mut tick_out);
        assert!(
            matches!(&tick_out[..], [KvOut::Done(r, KvOutcome::Failed)] if *r == req),
            "{tick_out:?}"
        );
    }

    #[test]
    fn codec_roundtrips_and_sizes_match() {
        let msgs = vec![
            KvMsg::Put {
                req: 9,
                origin: Endpoint::new("kv-0", 7100),
                key: "k".into(),
                val: "v".into(),
            },
            KvMsg::PutAck {
                req: 9,
                ok: true,
                version: 77,
            },
            KvMsg::Get {
                req: 10,
                origin: Endpoint::new("kv-1", 7100),
                key: "k".into(),
            },
            KvMsg::GetResp {
                req: 10,
                ok: true,
                found: false,
                val: String::new(),
                version: 0,
            },
            KvMsg::Replicate {
                partition: 3,
                req: 11,
                leader: Endpoint::new("kv-2", 7100),
                key: "k".into(),
                val: "v".into(),
                version: 78,
            },
            KvMsg::RepAck { req: 11 },
            KvMsg::Handoff {
                partition: 4,
                entries: vec![("a".into(), "1".into(), 5), ("b".into(), "2".into(), 6)],
            },
        ];
        for msg in msgs {
            let mut buf = Vec::new();
            encode(&msg, &mut buf);
            assert_eq!(buf.len(), encoded_len(&msg), "size mismatch for {msg:?}");
            assert_eq!(decode(&buf).unwrap(), msg);
        }
        assert!(decode(&[99, 0, 0]).is_err());
        assert!(decode(&[]).is_err());
    }
}
