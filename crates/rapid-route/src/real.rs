//! Hosting the KV data plane on the real TCP transport.
//!
//! [`KvRuntime`] owns a [`rapid_transport::Runtime`] and drives a
//! [`KvNode`] from its event stream on a dedicated worker thread: view
//! changes feed placement, app frames carry [`KvMsg`]s, and client
//! operations arrive over a channel and resolve through per-op reply
//! channels. The data plane is the same state machine the simulator
//! runs — only the clock and the wires differ.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rapid_core::config::Member;
use rapid_core::hash::DetHashMap;
use rapid_core::id::Endpoint;
use rapid_core::membership::ViewChange;
use rapid_core::node::NodeStatus;
use rapid_core::obs::{LatencyHist, Timeline, TimelinePoint, DEFAULT_TIMELINE_CAP};
use rapid_core::settings::Settings;
use rapid_transport::{AppEvent, AppPeer, Runtime};

use crate::client::{ClientStats, KvClient};
use crate::kv::{self, ClientOp, KvNode, KvOut, KvOutcome, KvStats, PartitionDigest};
use crate::placement::PlacementConfig;

/// A client operation submitted to the worker.
enum RealOp {
    Put {
        key: String,
        val: String,
        reply: Sender<KvOutcome>,
    },
    Get {
        key: String,
        reply: Sender<KvOutcome>,
    },
}

enum RealCtl {
    Leave,
    Shutdown,
}

/// Worker-published view of the node, for the scenario driver's polls.
#[derive(Clone, Debug)]
struct Mirror {
    status: NodeStatus,
    view_len: usize,
    view_count: u64,
    stats: KvStats,
    /// Remote client ops currently pending on this coordinator (the
    /// admission-controlled inbox).
    inbox_depth: usize,
    /// Subscribed smart clients.
    client_conns: usize,
    /// Inbound frames dropped by the transport's per-peer quota.
    quota_dropped: u64,
    /// `(partition, digest, settled)` for every replicated partition —
    /// the scenario driver's `kv_converged` sweep compares these across
    /// processes.
    digests: Vec<(u32, PartitionDigest, bool)>,
    /// Coordinator-side latency histogram of successful client ops, on
    /// the worker's wall clock (ms). Refreshed on the digest cadence.
    op_hist: LatencyHist,
    /// Sampled metrics timeline (interval deltas on the wall clock),
    /// republished in full on every sweep. Empty when `obs_sample_ms`
    /// is 0.
    timeline: Vec<TimelinePoint>,
    /// Sweeps lost to the bounded timeline ring wrapping.
    timeline_dropped: u64,
}

/// A real process running membership + the KV data plane.
pub struct KvRuntime {
    addr: Endpoint,
    ops_tx: Sender<RealOp>,
    ctl_tx: Sender<RealCtl>,
    mirror: Arc<Mutex<Mirror>>,
    handle: Option<JoinHandle<()>>,
    introspect_addr: Option<std::net::SocketAddr>,
}

impl KvRuntime {
    /// Starts a seed process with the data plane attached.
    /// `repair_interval_ms` sets the anti-entropy cadence (0 disables).
    pub fn start_seed(
        listen: Endpoint,
        settings: Settings,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
    ) -> std::io::Result<KvRuntime> {
        let batch_wire = settings.batch_wire;
        let obs_ring = settings.obs_ring;
        let obs_sample_ms = settings.obs_sample_ms;
        let admission = (settings.kv_inbox, settings.kv_shed_p99_ms);
        let rt = Runtime::start_seed(listen, settings)?;
        Ok(Self::wrap(
            rt, route, op_timeout_ms, repair_interval_ms, false, batch_wire, obs_ring,
            obs_sample_ms, admission,
        ))
    }

    /// Starts a joining process with the data plane attached.
    pub fn start_joiner(
        listen: Endpoint,
        seeds: Vec<Endpoint>,
        settings: Settings,
        metadata: rapid_core::Metadata,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
    ) -> std::io::Result<KvRuntime> {
        let batch_wire = settings.batch_wire;
        let obs_ring = settings.obs_ring;
        let obs_sample_ms = settings.obs_sample_ms;
        let admission = (settings.kv_inbox, settings.kv_shed_p99_ms);
        let rt = Runtime::start_joiner(listen, seeds, settings, metadata)?;
        Ok(Self::wrap(
            rt, route, op_timeout_ms, repair_interval_ms, true, batch_wire, obs_ring,
            obs_sample_ms, admission,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn wrap(
        mut rt: Runtime,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
        joiner: bool,
        batch_wire: bool,
        obs_ring: usize,
        obs_sample_ms: u64,
        admission: (usize, u64),
    ) -> KvRuntime {
        let addr = *rt.addr();
        let me: Member = rt.member().clone();
        let mut kv = KvNode::new(me, route, op_timeout_ms, None)
            .with_repair_interval(repair_interval_ms)
            .with_batching(batch_wire)
            .with_obs(obs_ring)
            .with_admission(admission.0, admission.1);
        if joiner {
            kv = kv.expect_initial_handoffs();
        }
        let (ops_tx, ops_rx) = bounded::<RealOp>(16 * 1024);
        let (ctl_tx, ctl_rx) = bounded::<RealCtl>(16);
        let mirror = Arc::new(Mutex::new(Mirror {
            status: rt.status(),
            view_len: rt.view().len(),
            view_count: 0,
            stats: KvStats::default(),
            inbox_depth: 0,
            client_conns: 0,
            quota_dropped: 0,
            digests: Vec::new(),
            op_hist: LatencyHist::new(),
            timeline: Vec::new(),
            timeline_dropped: 0,
        }));
        // Opt-in live introspection: with `RAPID_INTROSPECT=1` the
        // transport serves a one-line JSON status on a loopback side
        // listener, and the KV layer appends its published data-plane
        // counters and op-latency quantiles to that line.
        let introspect_addr = if std::env::var("RAPID_INTROSPECT").as_deref() == Ok("1") {
            let probe_mirror = Arc::clone(&mirror);
            rt.serve_introspection(move |line| {
                let m = probe_mirror.lock();
                let (p50, p99) = (
                    m.op_hist.quantile_ppm(500_000),
                    m.op_hist.quantile_ppm(990_000),
                );
                line.push_str(&format!(
                    ",\"puts_acked\":{},\"gets_ok\":{},\"bytes_moved\":{},\"repair_bytes\":{},\"op_p50_ms\":{},\"op_p99_ms\":{},\"inbox_depth\":{},\"shed_ops\":{},\"client_conns\":{},\"quota_dropped\":{}",
                    m.stats.puts_acked, m.stats.gets_ok, m.stats.bytes_moved,
                    m.stats.repair_bytes, p50, p99,
                    m.inbox_depth, m.stats.ops_shed, m.client_conns, m.quota_dropped,
                ));
            })
            .ok()
        } else {
            None
        };
        let worker_mirror = Arc::clone(&mirror);
        let handle = std::thread::spawn(move || {
            worker(rt, kv, ops_rx, ctl_rx, worker_mirror, obs_sample_ms);
        });
        KvRuntime {
            addr,
            ops_tx,
            ctl_tx,
            mirror,
            handle: Some(handle),
            introspect_addr,
        }
    }

    /// The node's listen address.
    pub fn addr(&self) -> Endpoint {
        self.addr
    }

    /// Latest published lifecycle status.
    pub fn status(&self) -> NodeStatus {
        self.mirror.lock().status
    }

    /// Latest published view size.
    pub fn view_len(&self) -> usize {
        self.mirror.lock().view_len
    }

    /// View changes observed so far.
    pub fn view_count(&self) -> u64 {
        self.mirror.lock().view_count
    }

    /// Latest published data-plane counters.
    pub fn stats(&self) -> KvStats {
        self.mirror.lock().stats
    }

    /// Latest published admission-inbox depth (remote client ops pending
    /// on this coordinator).
    pub fn inbox_depth(&self) -> usize {
        self.mirror.lock().inbox_depth
    }

    /// Latest published subscribed-client count.
    pub fn client_conns(&self) -> usize {
        self.mirror.lock().client_conns
    }

    /// Latest published per-peer-quota drop count from the transport.
    pub fn quota_dropped(&self) -> u64 {
        self.mirror.lock().quota_dropped
    }

    /// Latest published successful-op latency histogram (wall-clock ms).
    pub fn op_hist(&self) -> LatencyHist {
        self.mirror.lock().op_hist.clone()
    }

    /// Latest published `(partition, digest, settled)` snapshot of every
    /// partition this process replicates.
    pub fn digest_snapshot(&self) -> Vec<(u32, PartitionDigest, bool)> {
        self.mirror.lock().digests.clone()
    }

    /// Latest published metrics timeline: one interval-delta point per
    /// elapsed `obs_sample_ms` on the worker's wall clock, oldest first.
    /// Empty when sampling is disabled (`obs_sample_ms == 0`).
    pub fn timeline(&self) -> Vec<TimelinePoint> {
        self.mirror.lock().timeline.clone()
    }

    /// Timeline sweeps lost to the bounded ring wrapping.
    pub fn timeline_dropped(&self) -> u64 {
        self.mirror.lock().timeline_dropped
    }

    /// The loopback introspection listener's address, when enabled via
    /// `RAPID_INTROSPECT=1` at startup.
    pub fn introspect_addr(&self) -> Option<std::net::SocketAddr> {
        self.introspect_addr
    }

    /// Begins a write through this process; the outcome arrives on the
    /// returned channel (dropped channel = op abandoned).
    pub fn begin_put(&self, key: &str, val: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Put {
            key: key.to_string(),
            val: val.to_string(),
            reply,
        });
        rx
    }

    /// Begins a read through this process.
    pub fn begin_get(&self, key: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Get {
            key: key.to_string(),
            reply,
        });
        rx
    }

    /// Announces a voluntary departure and stops the process.
    pub fn leave(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Leave);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Hard-stops the process (a crash, as far as the cluster knows).
    pub fn shutdown_now(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvRuntime {
    fn drop(&mut self) {
        let _ = self.ctl_tx.try_send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker(
    rt: Runtime,
    mut kv: KvNode,
    ops_rx: Receiver<RealOp>,
    ctl_rx: Receiver<RealCtl>,
    mirror: Arc<Mutex<Mirror>>,
    obs_sample_ms: u64,
) {
    let mut out: Vec<KvOut> = Vec::new();
    let mut replies: DetHashMap<u64, Sender<KvOutcome>> = DetHashMap::default();
    let start = Instant::now();
    let mut view_count = 0u64;
    let mut next_tick = Instant::now();
    // Metrics timeline: the same delta sampler the simulator runs, on
    // the wall clock. Disabled (capacity 0, no deadline checks beyond
    // one branch) when `obs_sample_ms` is 0.
    let mut timeline = if obs_sample_ms > 0 {
        Timeline::new(DEFAULT_TIMELINE_CAP)
    } else {
        Timeline::new(0)
    };
    let mut cursor = TimelinePoint::default();
    let mut prev_hist = LatencyHist::new();
    let mut next_sample = Instant::now() + Duration::from_millis(obs_sample_ms.max(1));
    // If the process starts as an active seed, its one-member view is
    // already installed — subscribe the data plane immediately.
    if rt.status() == NodeStatus::Active {
        let now = 0;
        kv.on_view(ViewChange::initial(rt.view()).configuration, now, &mut out);
    }
    loop {
        match ctl_rx.try_recv() {
            Ok(RealCtl::Leave) => {
                rt.leave();
                let mut m = mirror.lock();
                m.status = NodeStatus::Left;
                return;
            }
            Ok(RealCtl::Shutdown) => {
                rt.shutdown_now();
                return;
            }
            Err(_) => {}
        }
        let now = start.elapsed().as_millis() as u64;
        // Membership + app events.
        match rt.events().recv_timeout(Duration::from_millis(5)) {
            Ok(AppEvent::View(vc)) => {
                view_count += 1;
                kv.on_view(vc.configuration, now, &mut out);
            }
            Ok(AppEvent::Joined(config)) => {
                kv.on_view(config, now, &mut out);
            }
            Ok(AppEvent::App(from, bytes)) => {
                // Corrupt peer payloads are dropped, like the transport does.
                if let Ok(msg) = kv::decode(&bytes) {
                    kv.on_message(from, msg, now, &mut out);
                }
            }
            Ok(AppEvent::Kicked) | Err(_) => {}
        }
        // Client submissions, drained as one burst and submitted through
        // a single outbox flush: ops sharing a leader leave in one app
        // frame.
        let mut burst: Vec<RealOp> = Vec::new();
        while let Ok(op) = ops_rx.try_recv() {
            burst.push(op);
        }
        if !burst.is_empty() {
            let client_ops: Vec<ClientOp<'_>> = burst
                .iter()
                .map(|op| match op {
                    RealOp::Put { key, val, .. } => ClientOp::Put { key, val },
                    RealOp::Get { key, .. } => ClientOp::Get { key },
                })
                .collect();
            let reqs = kv.client_ops(&client_ops, now, &mut out);
            for (req, op) in reqs.into_iter().zip(burst) {
                let reply = match op {
                    RealOp::Put { reply, .. } | RealOp::Get { reply, .. } => reply,
                };
                replies.insert(req, reply);
            }
        }
        // Timers. The digest snapshot is refreshed here rather than on
        // every (5 ms) loop pass: hashing the whole store is too heavy
        // for the idle path, and the converged sweep polls no faster
        // than this anyway.
        let mut fresh_digests = None;
        if Instant::now() >= next_tick {
            kv.on_tick(now, &mut out);
            next_tick = Instant::now() + Duration::from_millis(20);
            fresh_digests = Some(kv.digest_snapshot());
        }
        // Dispatch.
        for item in out.drain(..) {
            match item {
                KvOut::Send(to, msg) => {
                    let mut buf = Vec::with_capacity(kv::encoded_len(&msg));
                    kv::encode(&msg, &mut buf);
                    rt.send_app(to, buf);
                }
                KvOut::Done(req, outcome) => {
                    if let Some(reply) = replies.remove(&req) {
                        let _ = reply.try_send(outcome);
                    }
                }
            }
        }
        // Metrics sweep: record the deltas since the previous sweep.
        // Membership wire counters live on the transport's driver
        // thread, so the real-driver timeline carries the data plane
        // (ops, handoff/repair bytes, view changes) — the simulator
        // fills the network columns.
        let mut fresh_timeline = false;
        if timeline.enabled() && Instant::now() >= next_sample {
            let s = *kv.stats();
            let ops = s.puts_acked + s.gets_ok;
            let (_, p50, p99) = kv.op_hist().interval_quantiles(&prev_hist);
            // Feed the admission controller its latency signal, same as
            // the simulator's metrics sweep.
            kv.note_interval(p50, p99);
            let t_ms = start.elapsed().as_millis() as u64;
            timeline.push(TimelinePoint {
                t_ms,
                msgs: 0,
                bytes: 0,
                alerts: 0,
                view_changes: view_count - cursor.view_changes,
                ops: ops - cursor.ops,
                handoff_bytes: s.bytes_moved - cursor.handoff_bytes,
                repair_bytes: s.repair_bytes - cursor.repair_bytes,
                p50_ms: p50,
                p99_ms: p99,
            });
            cursor = TimelinePoint {
                t_ms,
                msgs: 0,
                bytes: 0,
                alerts: 0,
                view_changes: view_count,
                ops,
                handoff_bytes: s.bytes_moved,
                repair_bytes: s.repair_bytes,
                p50_ms: 0,
                p99_ms: 0,
            };
            prev_hist = kv.op_hist().clone();
            next_sample += Duration::from_millis(obs_sample_ms);
            fresh_timeline = true;
        }
        // Publish.
        {
            let mut m = mirror.lock();
            m.status = rt.status();
            m.view_len = rt.view().len();
            m.view_count = view_count;
            m.stats = *kv.stats();
            m.inbox_depth = kv.inbox_depth();
            m.client_conns = kv.client_conns();
            m.quota_dropped = rt.quota_dropped();
            if let Some(d) = fresh_digests {
                m.digests = d;
                m.op_hist = kv.op_hist().clone();
            }
            if fresh_timeline {
                m.timeline = timeline.iter_in_order().copied().collect();
                m.timeline_dropped = timeline.dropped();
            }
        }
    }
}

/// A smart client hosted on the real transport: a [`KvClient`] state
/// machine driven from an [`AppPeer`]'s event stream on a dedicated
/// worker thread. The `AppPeer` keeps one pooled TCP stream per
/// destination, so steady-state traffic holds exactly one connection per
/// partition leader — the per-leader connection pooling the client plane
/// promises. The client never joins the membership; it learns views
/// purely from `Sub`/`View` push frames.
pub struct KvClientRuntime {
    addr: Endpoint,
    ops_tx: Sender<RealOp>,
    ctl_tx: Sender<RealCtl>,
    published: Arc<Mutex<(ClientStats, LatencyHist, Option<u64>)>>,
    handle: Option<JoinHandle<()>>,
}

impl KvClientRuntime {
    /// Starts a client worker subscribing through `seeds` (cluster
    /// listen addresses), with placement spec `route` (must match the
    /// cluster's), an in-flight window, and a per-op deadline.
    pub fn start(
        seeds: Vec<Endpoint>,
        route: PlacementConfig,
        window: usize,
        op_timeout_ms: u64,
    ) -> std::io::Result<KvClientRuntime> {
        let peer = AppPeer::start(Endpoint::new("127.0.0.1", 0))?;
        let addr = *peer.addr();
        let client = KvClient::new(addr, route, seeds, window, op_timeout_ms);
        let (ops_tx, ops_rx) = bounded::<RealOp>(16 * 1024);
        let (ctl_tx, ctl_rx) = bounded::<RealCtl>(16);
        let published = Arc::new(Mutex::new((
            ClientStats::default(),
            LatencyHist::new(),
            None,
        )));
        let worker_pub = Arc::clone(&published);
        let handle = std::thread::spawn(move || {
            client_worker(peer, client, ops_rx, ctl_rx, worker_pub);
        });
        Ok(KvClientRuntime {
            addr,
            ops_tx,
            ctl_tx,
            published,
            handle: Some(handle),
        })
    }

    /// The client's listen address (what nodes see as the subscriber).
    pub fn addr(&self) -> Endpoint {
        self.addr
    }

    /// Latest published client-observed counters.
    pub fn stats(&self) -> ClientStats {
        self.published.lock().0
    }

    /// Latest published client-observed op-latency histogram (ms).
    pub fn op_hist(&self) -> LatencyHist {
        self.published.lock().1.clone()
    }

    /// The adopted view's sequence, once the first push landed.
    pub fn view_seq(&self) -> Option<u64> {
        self.published.lock().2
    }

    /// Begins a write through the smart client; the outcome arrives on
    /// the returned channel.
    pub fn begin_put(&self, key: &str, val: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Put {
            key: key.to_string(),
            val: val.to_string(),
            reply,
        });
        rx
    }

    /// Begins a read through the smart client.
    pub fn begin_get(&self, key: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Get {
            key: key.to_string(),
            reply,
        });
        rx
    }

    /// Stops the worker and the peer's sockets.
    pub fn shutdown_now(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvClientRuntime {
    fn drop(&mut self) {
        let _ = self.ctl_tx.try_send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn client_worker(
    peer: AppPeer,
    mut client: KvClient,
    ops_rx: Receiver<RealOp>,
    ctl_rx: Receiver<RealCtl>,
    published: Arc<Mutex<(ClientStats, LatencyHist, Option<u64>)>>,
) {
    let mut out: Vec<KvOut> = Vec::new();
    let mut replies: DetHashMap<u64, Sender<KvOutcome>> = DetHashMap::default();
    let start = Instant::now();
    let mut next_tick = Instant::now();
    loop {
        if ctl_rx.try_recv().is_ok() {
            peer.shutdown_now();
            return;
        }
        let now = start.elapsed().as_millis() as u64;
        // Inbound view pushes and verdicts.
        if let Ok((from, bytes)) = peer.events().recv_timeout(Duration::from_millis(5)) {
            if let Ok(msg) = kv::decode(&bytes) {
                client.on_message(from, msg, now, &mut out);
            }
        }
        // Client submissions, one pipelined burst per pass.
        let mut burst: Vec<RealOp> = Vec::new();
        while let Ok(op) = ops_rx.try_recv() {
            burst.push(op);
        }
        if !burst.is_empty() {
            let client_ops: Vec<ClientOp<'_>> = burst
                .iter()
                .map(|op| match op {
                    RealOp::Put { key, val, .. } => ClientOp::Put { key, val },
                    RealOp::Get { key, .. } => ClientOp::Get { key },
                })
                .collect();
            let reqs = client.submit_ops(&client_ops, now, &mut out);
            for (req, op) in reqs.into_iter().zip(burst) {
                let reply = match op {
                    RealOp::Put { reply, .. } | RealOp::Get { reply, .. } => reply,
                };
                replies.insert(req, reply);
            }
        }
        if Instant::now() >= next_tick {
            client.on_tick(now, &mut out);
            next_tick = Instant::now() + Duration::from_millis(20);
        }
        for item in out.drain(..) {
            match item {
                KvOut::Send(to, msg) => {
                    let mut buf = Vec::with_capacity(kv::encoded_len(&msg));
                    kv::encode(&msg, &mut buf);
                    peer.send_app(to, buf);
                }
                KvOut::Done(req, outcome) => {
                    if let Some(reply) = replies.remove(&req) {
                        let _ = reply.try_send(outcome);
                    }
                }
            }
        }
        {
            let mut p = published.lock();
            p.0 = *client.stats();
            p.1 = client.op_hist().clone();
            p.2 = client.view_seq();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            tick_interval_ms: 20,
            fd_probe_interval_ms: 200,
            fd_probe_timeout_ms: 200,
            consensus_fallback_base_ms: 1_500,
            consensus_fallback_jitter_ms: 500,
            join_timeout_ms: 1_000,
            gossip_interval_ms: 50,
            ..Settings::default()
        }
    }

    fn spec() -> PlacementConfig {
        PlacementConfig {
            partitions: 8,
            replication: 2,
        }
    }

    fn wait_for<F: FnMut() -> bool>(mut f: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    #[test]
    fn real_timeline_samples_ops_and_introspection_reports_them() {
        // The env gate is read once at startup; set it before the
        // runtime exists. Harmless to the other test in this module
        // (it would merely also serve a status socket).
        std::env::set_var("RAPID_INTROSPECT", "1");
        let settings = Settings {
            obs_sample_ms: 100,
            ..fast_settings()
        };
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings,
            spec(),
            2_000,
            500,
        )
        .unwrap();
        std::env::remove_var("RAPID_INTROSPECT");
        assert!(wait_for(
            || seed.status() == NodeStatus::Active,
            Duration::from_secs(10)
        ));
        for i in 0..8 {
            let rx = seed.begin_put(&format!("tk{i}"), "tv");
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(KvOutcome::Acked { .. })
            ));
        }
        // Wall-clock sweeps land on the 100 ms cadence; the delta sums
        // must recover the cumulative op count.
        assert!(
            wait_for(
                || seed.timeline().iter().map(|p| p.ops).sum::<u64>() >= 8,
                Duration::from_secs(10)
            ),
            "timeline deltas must sum to the acked ops: {:?}",
            seed.timeline()
        );
        assert_eq!(seed.timeline_dropped(), 0);
        let probe = seed.introspect_addr().expect("introspection enabled by env");
        let mut conn = std::net::TcpStream::connect(probe).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut body = String::new();
        use std::io::Read as _;
        conn.read_to_string(&mut body).unwrap();
        assert!(body.contains("\"status\":\"Active\""), "{body:?}");
        assert!(body.contains("\"puts_acked\":8"), "{body:?}");
        assert!(body.contains("\"op_p99_ms\":"), "{body:?}");
        // Client-plane overload observability rides the same line.
        assert!(body.contains("\"inbox_depth\":"), "{body:?}");
        assert!(body.contains("\"shed_ops\":0"), "{body:?}");
        assert!(body.contains("\"client_conns\":"), "{body:?}");
        assert!(body.contains("\"quota_dropped\":0"), "{body:?}");
        seed.shutdown_now();
    }

    #[test]
    fn real_smart_client_subscribes_routes_and_completes_ops() {
        let settings = fast_settings();
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings.clone(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        let seed_addr = seed.addr();
        let joiner = KvRuntime::start_joiner(
            Endpoint::new("127.0.0.1", 0),
            vec![seed_addr],
            settings,
            rapid_core::Metadata::new(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        assert!(
            wait_for(
                || seed.view_len() == 2 && joiner.view_len() == 2,
                Duration::from_secs(30)
            ),
            "2-node cluster must form"
        );
        let client = KvClientRuntime::start(vec![seed_addr], spec(), 64, 5_000).unwrap();
        assert!(
            wait_for(|| client.view_seq().is_some(), Duration::from_secs(10)),
            "client must adopt a pushed view"
        );
        for i in 0..10 {
            let rx = client.begin_put(&format!("sk{i}"), &format!("sv{i}"));
            assert!(
                matches!(rx.recv_timeout(Duration::from_secs(10)), Ok(KvOutcome::Acked { .. })),
                "client put {i} must ack"
            );
        }
        for i in 0..10 {
            let rx = client.begin_get(&format!("sk{i}"));
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(KvOutcome::Found { val, .. }) => assert_eq!(val, format!("sv{i}")),
                other => panic!("client get {i}: {other:?}"),
            }
        }
        let cs = client.stats();
        assert_eq!(cs.acked, 10, "{cs:?}");
        assert_eq!(cs.found, 10, "{cs:?}");
        assert_eq!(cs.shed, 0, "{cs:?}");
        assert!(cs.views_adopted >= 1);
        let (p50, p99, _) = client.op_hist().percentiles();
        assert!(p50 <= p99, "client-observed quantiles sane");
        // The subscription is visible server-side.
        assert!(
            wait_for(|| seed.client_conns() >= 1, Duration::from_secs(5)),
            "seed must count the subscribed client"
        );
        client.shutdown_now();
        joiner.shutdown_now();
        seed.shutdown_now();
    }

    #[test]
    fn real_kv_cluster_serves_and_survives_a_crash() {
        let settings = fast_settings();
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings.clone(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        let seed_addr = seed.addr();
        let mut joiners = Vec::new();
        for i in 0..3 {
            joiners.push(
                KvRuntime::start_joiner(
                    Endpoint::new("127.0.0.1", 0),
                    vec![seed_addr],
                    settings.clone(),
                    rapid_core::Metadata::with_entry("proc", format!("{i}")),
                    spec(),
                    2_000,
                    500,
                )
                .unwrap(),
            );
        }
        assert!(
            wait_for(
                || seed.view_len() == 4 && joiners.iter().all(|j| j.view_len() == 4),
                Duration::from_secs(30)
            ),
            "4-node KV cluster must form, seed sees {}",
            seed.view_len()
        );

        // Write through different coordinators, read through others.
        let mut acked = Vec::new();
        for i in 0..12 {
            let via = if i % 2 == 0 { &seed } else { &joiners[i % 3] };
            let rx = via.begin_put(&format!("rk{i}"), &format!("rv{i}"));
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(KvOutcome::Acked { version }) => acked.push((format!("rk{i}"), version)),
                other => panic!("put {i} failed: {other:?}"),
            }
        }

        // Crash one joiner; the survivors rebalance and keep serving.
        let victim = joiners.pop().unwrap();
        victim.shutdown_now();
        assert!(
            wait_for(
                || seed.view_len() == 3 && joiners.iter().all(|j| j.view_len() == 3),
                Duration::from_secs(60)
            ),
            "crashed node must be removed everywhere"
        );
        // Give handoffs a moment, then verify every acked write.
        std::thread::sleep(Duration::from_millis(500));
        for (key, version) in &acked {
            let got = (|| {
                for _ in 0..40 {
                    let rx = joiners[0].begin_get(key);
                    match rx.recv_timeout(Duration::from_secs(5)) {
                        Ok(KvOutcome::Found { val, version: v }) => return Some((val, v)),
                        _ => std::thread::sleep(Duration::from_millis(250)),
                    }
                }
                None
            })();
            match got {
                Some((val, v)) => {
                    assert!(val.starts_with("rv"), "garbage value for {key}");
                    assert!(v >= *version, "version went backwards for {key}");
                }
                None => {
                    eprintln!("seed stats: {:?}", seed.stats());
                    for (i, j) in joiners.iter().enumerate() {
                        eprintln!("joiner{i} stats: {:?}", j.stats());
                    }
                    panic!("acked key {key} lost after crash");
                }
            }
        }
        let stats = seed.stats();
        assert!(stats.rebalances >= 1, "seed must have rebalanced: {stats:?}");
        for j in joiners {
            j.shutdown_now();
        }
        seed.shutdown_now();
    }
}
