//! Hosting the KV data plane on the real TCP transport.
//!
//! [`KvRuntime`] owns a [`rapid_transport::Runtime`] and drives the KV
//! data plane from its event stream: view changes feed placement, app
//! frames carry [`KvMsg`](crate::kv::KvMsg)s, and client operations
//! arrive over channels and resolve through per-op reply channels. The
//! data plane is the same state machine the simulator runs — only the
//! clock and the wires differ.
//!
//! With `Settings::kv_shards == 1` (the default) a single worker thread
//! hosts one [`KvNode`] — the sans-io oracle path, bit-identical to the
//! pre-sharding runtime. With `kv_shards = W > 1` the data plane runs
//! thread-per-core: `W` shard threads each own a [`KvNode`] restricted
//! (via [`KvNode::with_shard`]) to the partitions
//! [`shard_of`](crate::placement::shard_of) assigns them, while the
//! membership plane stays on one worker that fans every view adoption
//! out to all shards over sequenced FIFO channels and splits inbound
//! frames with [`kv::shard_route`]. Shards share no mutable state; each
//! sends through its own clone of the transport's
//! [`AppSender`](rapid_transport::AppSender), which feeds the per-peer
//! writer threads.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rapid_core::config::{Configuration, Member};
use rapid_core::hash::DetHashMap;
use rapid_core::id::Endpoint;
use rapid_core::membership::ViewChange;
use rapid_core::node::NodeStatus;
use rapid_core::obs::{LatencyHist, Timeline, TimelinePoint, DEFAULT_TIMELINE_CAP};
use rapid_core::settings::Settings;
use rapid_transport::{AppEvent, AppPeer, AppSender, Runtime};

use crate::client::{ClientStats, KvClient};
use crate::kv::{self, ClientOp, KvMsg, KvNode, KvOut, KvOutcome, KvStats, PartitionDigest};
use crate::placement::{partition_of, shard_of, PlacementConfig};

/// A client operation submitted to the worker.
enum RealOp {
    Put {
        key: String,
        val: String,
        reply: Sender<KvOutcome>,
    },
    Get {
        key: String,
        reply: Sender<KvOutcome>,
    },
}

enum RealCtl {
    Leave,
    Shutdown,
}

/// One per-shard observability sample, taken on the `obs_sample_ms`
/// cadence by the membership worker (or the single worker when
/// `kv_shards == 1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardPoint {
    /// Sample time on the process wall clock (ms since start).
    pub t_ms: u64,
    /// Remote client ops pending in the shard's admission inbox.
    pub depth: u64,
    /// Successful client ops the shard completed during the interval.
    pub ops: u64,
}

/// Input to a shard thread. Views are broadcast by the membership
/// worker with a monotone sequence number; the FIFO channel guarantees
/// every shard adopts them in the same order, so all shards recompute
/// the identical placement.
enum ShardIn {
    View(u64, Arc<Configuration>),
    Msg(Endpoint, KvMsg),
    /// The merged interval quantiles, fed back as the admission
    /// controller's latency signal (mirrors the unsharded sweep).
    NoteInterval(u64, u64),
    Stop,
}

/// Snapshot a shard thread publishes for the membership worker to merge.
#[derive(Clone)]
struct ShardPub {
    stats: KvStats,
    inbox_depth: usize,
    client_conns: usize,
    digests: Vec<(u32, PartitionDigest, bool)>,
    op_hist: LatencyHist,
}

impl ShardPub {
    fn new() -> ShardPub {
        ShardPub {
            stats: KvStats::default(),
            inbox_depth: 0,
            client_conns: 0,
            digests: Vec::new(),
            op_hist: LatencyHist::new(),
        }
    }
}

/// A running shard thread: its input channel and join handle.
struct Shard {
    tx: Sender<ShardIn>,
    handle: JoinHandle<()>,
}

fn stop_shards(shards: &mut Vec<Shard>) {
    for s in shards.iter() {
        let _ = s.tx.send(ShardIn::Stop);
    }
    for s in shards.drain(..) {
        let _ = s.handle.join();
    }
}

/// Worker-published view of the node, for the scenario driver's polls.
#[derive(Clone, Debug)]
struct Mirror {
    status: NodeStatus,
    view_len: usize,
    view_count: u64,
    stats: KvStats,
    /// Remote client ops currently pending on this coordinator (the
    /// admission-controlled inbox).
    inbox_depth: usize,
    /// Subscribed smart clients.
    client_conns: usize,
    /// Inbound frames dropped by the transport's per-peer quota.
    quota_dropped: u64,
    /// `(partition, digest, settled)` for every replicated partition —
    /// the scenario driver's `kv_converged` sweep compares these across
    /// processes.
    digests: Vec<(u32, PartitionDigest, bool)>,
    /// Coordinator-side latency histogram of successful client ops, on
    /// the worker's wall clock (ms). Refreshed on the digest cadence.
    op_hist: LatencyHist,
    /// Sampled metrics timeline (interval deltas on the wall clock),
    /// republished in full on every sweep. Empty when `obs_sample_ms`
    /// is 0.
    timeline: Vec<TimelinePoint>,
    /// Sweeps lost to the bounded timeline ring wrapping.
    timeline_dropped: u64,
    /// Latest per-shard admission-inbox depths (one entry per shard;
    /// a single entry on the unsharded path).
    shard_depths: Vec<u64>,
    /// Latest per-shard cumulative successful-op counts.
    shard_ops: Vec<u64>,
    /// Per-shard sampled series on the timeline cadence, oldest first.
    shard_series: Vec<Vec<ShardPoint>>,
}

/// A real process running membership + the KV data plane.
pub struct KvRuntime {
    addr: Endpoint,
    /// One submission channel per data-plane shard; ops route by
    /// `shard_of(partition_of(key))`, so the shard that allocates a
    /// request id is the shard that completes it.
    ops_txs: Vec<Sender<RealOp>>,
    partitions: u32,
    ctl_tx: Sender<RealCtl>,
    mirror: Arc<Mutex<Mirror>>,
    handle: Option<JoinHandle<()>>,
    introspect_addr: Option<std::net::SocketAddr>,
}

impl KvRuntime {
    /// Starts a seed process with the data plane attached.
    /// `repair_interval_ms` sets the anti-entropy cadence (0 disables).
    pub fn start_seed(
        listen: Endpoint,
        settings: Settings,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
    ) -> std::io::Result<KvRuntime> {
        let batch_wire = settings.batch_wire;
        let obs_ring = settings.obs_ring;
        let obs_sample_ms = settings.obs_sample_ms;
        let admission = (settings.kv_inbox, settings.kv_shed_p99_ms);
        let shards = Self::check_shards(settings.kv_shards, route)?;
        let rt = Runtime::start_seed(listen, settings)?;
        Ok(Self::wrap(
            rt, route, op_timeout_ms, repair_interval_ms, false, batch_wire, obs_ring,
            obs_sample_ms, admission, shards,
        ))
    }

    /// Starts a joining process with the data plane attached.
    pub fn start_joiner(
        listen: Endpoint,
        seeds: Vec<Endpoint>,
        settings: Settings,
        metadata: rapid_core::Metadata,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
    ) -> std::io::Result<KvRuntime> {
        let batch_wire = settings.batch_wire;
        let obs_ring = settings.obs_ring;
        let obs_sample_ms = settings.obs_sample_ms;
        let admission = (settings.kv_inbox, settings.kv_shed_p99_ms);
        let shards = Self::check_shards(settings.kv_shards, route)?;
        let rt = Runtime::start_joiner(listen, seeds, settings, metadata)?;
        Ok(Self::wrap(
            rt, route, op_timeout_ms, repair_interval_ms, true, batch_wire, obs_ring,
            obs_sample_ms, admission, shards,
        ))
    }

    /// A shard with no partitions could never serve an op, so more
    /// shards than partitions is a configuration error, caught before
    /// any socket is bound.
    fn check_shards(kv_shards: usize, route: PlacementConfig) -> std::io::Result<usize> {
        let shards = kv_shards.max(1);
        if shards > route.partitions as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "kv_shards = {shards} exceeds the {} KV partitions; every shard must \
                     own at least one partition (lower kv_shards or raise partitions)",
                    route.partitions
                ),
            ));
        }
        Ok(shards)
    }

    #[allow(clippy::too_many_arguments)]
    fn wrap(
        mut rt: Runtime,
        route: PlacementConfig,
        op_timeout_ms: u64,
        repair_interval_ms: u64,
        joiner: bool,
        batch_wire: bool,
        obs_ring: usize,
        obs_sample_ms: u64,
        admission: (usize, u64),
        shards: usize,
    ) -> KvRuntime {
        let addr = *rt.addr();
        let me: Member = rt.member().clone();
        let (ctl_tx, ctl_rx) = bounded::<RealCtl>(16);
        let mirror = Arc::new(Mutex::new(Mirror {
            status: rt.status(),
            view_len: rt.view().len(),
            view_count: 0,
            stats: KvStats::default(),
            inbox_depth: 0,
            client_conns: 0,
            quota_dropped: 0,
            digests: Vec::new(),
            op_hist: LatencyHist::new(),
            timeline: Vec::new(),
            timeline_dropped: 0,
            shard_depths: vec![0; shards],
            shard_ops: vec![0; shards],
            shard_series: vec![Vec::new(); shards],
        }));
        // Opt-in live introspection: with `RAPID_INTROSPECT=1` the
        // transport serves a one-line JSON status on a loopback side
        // listener, and the KV layer appends its published data-plane
        // counters, op-latency quantiles, and per-shard depth/ops to
        // that line.
        let introspect_addr = if std::env::var("RAPID_INTROSPECT").as_deref() == Ok("1") {
            let probe_mirror = Arc::clone(&mirror);
            rt.serve_introspection(move |line| {
                let m = probe_mirror.lock();
                let (p50, p99) = (
                    m.op_hist.quantile_ppm(500_000),
                    m.op_hist.quantile_ppm(990_000),
                );
                let join = |v: &[u64]| {
                    v.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                line.push_str(&format!(
                    ",\"puts_acked\":{},\"gets_ok\":{},\"bytes_moved\":{},\"repair_bytes\":{},\"op_p50_ms\":{},\"op_p99_ms\":{},\"inbox_depth\":{},\"shed_ops\":{},\"client_conns\":{},\"quota_dropped\":{},\"shards\":{},\"shard_depth\":[{}],\"shard_ops\":[{}]",
                    m.stats.puts_acked, m.stats.gets_ok, m.stats.bytes_moved,
                    m.stats.repair_bytes, p50, p99,
                    m.inbox_depth, m.stats.ops_shed, m.client_conns, m.quota_dropped,
                    m.shard_depths.len(), join(&m.shard_depths), join(&m.shard_ops),
                ));
            })
            .ok()
        } else {
            None
        };
        let worker_mirror = Arc::clone(&mirror);
        let build_kv = |index: usize| {
            let mut kv = KvNode::new(me.clone(), route, op_timeout_ms, None)
                .with_shard(index, shards)
                .with_repair_interval(repair_interval_ms)
                .with_batching(batch_wire)
                .with_obs(obs_ring)
                // Split the admission budget so the process-level bound
                // stays put (exact on the unsharded path).
                .with_admission(admission.0.div_ceil(shards), admission.1);
            if joiner {
                kv = kv.expect_initial_handoffs();
            }
            kv
        };
        let (ops_txs, handle) = if shards == 1 {
            // Single-threaded oracle path: one worker drives membership
            // and the data plane, exactly as before sharding existed.
            let kv = build_kv(0);
            let (ops_tx, ops_rx) = bounded::<RealOp>(16 * 1024);
            let handle = std::thread::spawn(move || {
                worker(rt, kv, ops_rx, ctl_rx, worker_mirror, obs_sample_ms);
            });
            (vec![ops_tx], handle)
        } else {
            // Thread-per-core path: W shard threads own the data plane;
            // the membership worker owns the transport event stream and
            // fans views/frames out to them.
            let start = Instant::now();
            let mut ops_txs = Vec::with_capacity(shards);
            let mut shard_handles = Vec::with_capacity(shards);
            let mut pubs = Vec::with_capacity(shards);
            for i in 0..shards {
                let kv = build_kv(i);
                let (ops_tx, ops_rx) = bounded::<RealOp>(16 * 1024);
                let (in_tx, in_rx) = bounded::<ShardIn>(16 * 1024);
                let slot = Arc::new(Mutex::new(ShardPub::new()));
                let sender = rt.app_sender();
                let shard_slot = Arc::clone(&slot);
                let handle = std::thread::spawn(move || {
                    shard_worker(kv, in_rx, ops_rx, sender, shard_slot, start);
                });
                ops_txs.push(ops_tx);
                pubs.push(slot);
                shard_handles.push(Shard { tx: in_tx, handle });
            }
            let partitions = route.partitions;
            let handle = std::thread::spawn(move || {
                membership_worker(
                    rt,
                    shard_handles,
                    ctl_rx,
                    worker_mirror,
                    pubs,
                    partitions,
                    obs_sample_ms,
                    start,
                );
            });
            (ops_txs, handle)
        };
        KvRuntime {
            addr,
            ops_txs,
            partitions: route.partitions,
            ctl_tx,
            mirror,
            handle: Some(handle),
            introspect_addr,
        }
    }

    /// The node's listen address.
    pub fn addr(&self) -> Endpoint {
        self.addr
    }

    /// Latest published lifecycle status.
    pub fn status(&self) -> NodeStatus {
        self.mirror.lock().status
    }

    /// Latest published view size.
    pub fn view_len(&self) -> usize {
        self.mirror.lock().view_len
    }

    /// View changes observed so far.
    pub fn view_count(&self) -> u64 {
        self.mirror.lock().view_count
    }

    /// Latest published data-plane counters.
    pub fn stats(&self) -> KvStats {
        self.mirror.lock().stats
    }

    /// Latest published admission-inbox depth (remote client ops pending
    /// on this coordinator).
    pub fn inbox_depth(&self) -> usize {
        self.mirror.lock().inbox_depth
    }

    /// Latest published subscribed-client count.
    pub fn client_conns(&self) -> usize {
        self.mirror.lock().client_conns
    }

    /// Latest published per-peer-quota drop count from the transport.
    pub fn quota_dropped(&self) -> u64 {
        self.mirror.lock().quota_dropped
    }

    /// Latest published successful-op latency histogram (wall-clock ms).
    pub fn op_hist(&self) -> LatencyHist {
        self.mirror.lock().op_hist.clone()
    }

    /// Latest published `(partition, digest, settled)` snapshot of every
    /// partition this process replicates.
    pub fn digest_snapshot(&self) -> Vec<(u32, PartitionDigest, bool)> {
        self.mirror.lock().digests.clone()
    }

    /// Latest published metrics timeline: one interval-delta point per
    /// elapsed `obs_sample_ms` on the worker's wall clock, oldest first.
    /// Empty when sampling is disabled (`obs_sample_ms == 0`).
    pub fn timeline(&self) -> Vec<TimelinePoint> {
        self.mirror.lock().timeline.clone()
    }

    /// Timeline sweeps lost to the bounded ring wrapping.
    pub fn timeline_dropped(&self) -> u64 {
        self.mirror.lock().timeline_dropped
    }

    /// Number of data-plane shard threads (`1` = the single-threaded
    /// oracle path).
    pub fn shards(&self) -> usize {
        self.ops_txs.len()
    }

    /// Latest published per-shard admission-inbox depths, one entry per
    /// shard (a single entry on the unsharded path).
    pub fn shard_depths(&self) -> Vec<u64> {
        self.mirror.lock().shard_depths.clone()
    }

    /// Latest published per-shard sampled series: one
    /// `(t_ms, depth, ops)` point per elapsed `obs_sample_ms`, oldest
    /// first, one series per shard. Rides the same cadence as
    /// [`Self::timeline`] but is never part of any report schema.
    pub fn shard_timeline(&self) -> Vec<Vec<ShardPoint>> {
        self.mirror.lock().shard_series.clone()
    }

    /// The loopback introspection listener's address, when enabled via
    /// `RAPID_INTROSPECT=1` at startup.
    pub fn introspect_addr(&self) -> Option<std::net::SocketAddr> {
        self.introspect_addr
    }

    /// The shard that coordinates `key`: the same rendezvous function
    /// placement uses, over the key's partition.
    fn shard_for(&self, key: &str) -> usize {
        shard_of(partition_of(key, self.partitions), self.ops_txs.len())
    }

    /// Begins a write through this process; the outcome arrives on the
    /// returned channel (dropped channel = op abandoned).
    pub fn begin_put(&self, key: &str, val: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_txs[self.shard_for(key)].try_send(RealOp::Put {
            key: key.to_string(),
            val: val.to_string(),
            reply,
        });
        rx
    }

    /// Begins a read through this process.
    pub fn begin_get(&self, key: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_txs[self.shard_for(key)].try_send(RealOp::Get {
            key: key.to_string(),
            reply,
        });
        rx
    }

    /// Announces a voluntary departure and stops the process.
    pub fn leave(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Leave);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Hard-stops the process (a crash, as far as the cluster knows).
    pub fn shutdown_now(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvRuntime {
    fn drop(&mut self) {
        let _ = self.ctl_tx.try_send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker(
    rt: Runtime,
    mut kv: KvNode,
    ops_rx: Receiver<RealOp>,
    ctl_rx: Receiver<RealCtl>,
    mirror: Arc<Mutex<Mirror>>,
    obs_sample_ms: u64,
) {
    let mut out: Vec<KvOut> = Vec::new();
    let mut replies: DetHashMap<u64, Sender<KvOutcome>> = DetHashMap::default();
    let start = Instant::now();
    let mut view_count = 0u64;
    let mut next_tick = Instant::now();
    // Metrics timeline: the same delta sampler the simulator runs, on
    // the wall clock. Disabled (capacity 0, no deadline checks beyond
    // one branch) when `obs_sample_ms` is 0.
    let mut timeline = if obs_sample_ms > 0 {
        Timeline::new(DEFAULT_TIMELINE_CAP)
    } else {
        Timeline::new(0)
    };
    let mut cursor = TimelinePoint::default();
    let mut prev_hist = LatencyHist::new();
    let mut next_sample = Instant::now() + Duration::from_millis(obs_sample_ms.max(1));
    // If the process starts as an active seed, its one-member view is
    // already installed — subscribe the data plane immediately.
    if rt.status() == NodeStatus::Active {
        let now = 0;
        kv.on_view(ViewChange::initial(rt.view()).configuration, now, &mut out);
    }
    loop {
        match ctl_rx.try_recv() {
            Ok(RealCtl::Leave) => {
                rt.leave();
                let mut m = mirror.lock();
                m.status = NodeStatus::Left;
                return;
            }
            Ok(RealCtl::Shutdown) => {
                rt.shutdown_now();
                return;
            }
            Err(_) => {}
        }
        let now = start.elapsed().as_millis() as u64;
        // Membership + app events.
        match rt.events().recv_timeout(Duration::from_millis(5)) {
            Ok(AppEvent::View(vc)) => {
                view_count += 1;
                kv.on_view(vc.configuration, now, &mut out);
            }
            Ok(AppEvent::Joined(config)) => {
                kv.on_view(config, now, &mut out);
            }
            Ok(AppEvent::App(from, bytes)) => {
                // Corrupt peer payloads are dropped, like the transport does.
                if let Ok(msg) = kv::decode(&bytes) {
                    kv.on_message(from, msg, now, &mut out);
                }
            }
            Ok(AppEvent::Kicked) | Err(_) => {}
        }
        // Client submissions, drained as one burst and submitted through
        // a single outbox flush: ops sharing a leader leave in one app
        // frame.
        let mut burst: Vec<RealOp> = Vec::new();
        while let Ok(op) = ops_rx.try_recv() {
            burst.push(op);
        }
        if !burst.is_empty() {
            let client_ops: Vec<ClientOp<'_>> = burst
                .iter()
                .map(|op| match op {
                    RealOp::Put { key, val, .. } => ClientOp::Put { key, val },
                    RealOp::Get { key, .. } => ClientOp::Get { key },
                })
                .collect();
            let reqs = kv.client_ops(&client_ops, now, &mut out);
            for (req, op) in reqs.into_iter().zip(burst) {
                let reply = match op {
                    RealOp::Put { reply, .. } | RealOp::Get { reply, .. } => reply,
                };
                replies.insert(req, reply);
            }
        }
        // Timers. The digest snapshot is refreshed here rather than on
        // every (5 ms) loop pass: hashing the whole store is too heavy
        // for the idle path, and the converged sweep polls no faster
        // than this anyway.
        let mut fresh_digests = None;
        if Instant::now() >= next_tick {
            kv.on_tick(now, &mut out);
            next_tick = Instant::now() + Duration::from_millis(20);
            fresh_digests = Some(kv.digest_snapshot());
        }
        // Dispatch.
        for item in out.drain(..) {
            match item {
                KvOut::Send(to, msg) => {
                    let mut buf = Vec::with_capacity(kv::encoded_len(&msg));
                    kv::encode(&msg, &mut buf);
                    rt.send_app(to, buf);
                }
                KvOut::Done(req, outcome) => {
                    if let Some(reply) = replies.remove(&req) {
                        let _ = reply.try_send(outcome);
                    }
                }
            }
        }
        // Metrics sweep: record the deltas since the previous sweep.
        // Membership wire counters live on the transport's driver
        // thread, so the real-driver timeline carries the data plane
        // (ops, handoff/repair bytes, view changes) — the simulator
        // fills the network columns.
        let mut fresh_timeline = false;
        let mut fresh_shard_point = None;
        if timeline.enabled() && Instant::now() >= next_sample {
            let s = *kv.stats();
            let ops = s.puts_acked + s.gets_ok;
            let (_, p50, p99) = kv.op_hist().interval_quantiles(&prev_hist);
            // Feed the admission controller its latency signal, same as
            // the simulator's metrics sweep.
            kv.note_interval(p50, p99);
            let t_ms = start.elapsed().as_millis() as u64;
            fresh_shard_point = Some(ShardPoint {
                t_ms,
                depth: kv.inbox_depth() as u64,
                ops: ops - cursor.ops,
            });
            timeline.push(TimelinePoint {
                t_ms,
                msgs: 0,
                bytes: 0,
                alerts: 0,
                view_changes: view_count - cursor.view_changes,
                ops: ops - cursor.ops,
                handoff_bytes: s.bytes_moved - cursor.handoff_bytes,
                repair_bytes: s.repair_bytes - cursor.repair_bytes,
                p50_ms: p50,
                p99_ms: p99,
            });
            cursor = TimelinePoint {
                t_ms,
                msgs: 0,
                bytes: 0,
                alerts: 0,
                view_changes: view_count,
                ops,
                handoff_bytes: s.bytes_moved,
                repair_bytes: s.repair_bytes,
                p50_ms: 0,
                p99_ms: 0,
            };
            prev_hist = kv.op_hist().clone();
            next_sample += Duration::from_millis(obs_sample_ms);
            fresh_timeline = true;
        }
        // Publish.
        {
            let mut m = mirror.lock();
            m.status = rt.status();
            m.view_len = rt.view().len();
            m.view_count = view_count;
            m.stats = *kv.stats();
            m.inbox_depth = kv.inbox_depth();
            m.client_conns = kv.client_conns();
            m.quota_dropped = rt.quota_dropped();
            m.shard_depths[0] = m.inbox_depth as u64;
            m.shard_ops[0] = m.stats.puts_acked + m.stats.gets_ok;
            if let Some(d) = fresh_digests {
                m.digests = d;
                m.op_hist = kv.op_hist().clone();
            }
            if fresh_timeline {
                m.timeline = timeline.iter_in_order().copied().collect();
                m.timeline_dropped = timeline.dropped();
            }
            if let Some(pt) = fresh_shard_point {
                push_shard_point(&mut m.shard_series[0], pt);
            }
        }
    }
}

/// Appends a shard sample, bounding the series like the timeline ring.
fn push_shard_point(series: &mut Vec<ShardPoint>, pt: ShardPoint) {
    if series.len() >= DEFAULT_TIMELINE_CAP {
        series.remove(0);
    }
    series.push(pt);
}

/// A data-plane shard thread: drives one partition-filtered [`KvNode`]
/// from its sequenced input channel, submits local client ops, ticks
/// timers, and sends outbound frames through its own transport handle.
/// Mirrors the unsharded `worker` loop minus the membership plumbing.
fn shard_worker(
    mut kv: KvNode,
    in_rx: Receiver<ShardIn>,
    ops_rx: Receiver<RealOp>,
    sender: AppSender,
    slot: Arc<Mutex<ShardPub>>,
    start: Instant,
) {
    let mut out: Vec<KvOut> = Vec::new();
    let mut replies: DetHashMap<u64, Sender<KvOutcome>> = DetHashMap::default();
    let mut next_tick = Instant::now();
    loop {
        let now = start.elapsed().as_millis() as u64;
        match in_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(ShardIn::View(_seq, cfg)) => kv.on_view(cfg, now, &mut out),
            Ok(ShardIn::Msg(from, msg)) => kv.on_message(from, msg, now, &mut out),
            Ok(ShardIn::NoteInterval(p50, p99)) => kv.note_interval(p50, p99),
            Ok(ShardIn::Stop) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        // Drain queued inputs before sleeping again: view fanout and
        // routed frames arrive in bursts.
        while let Ok(input) = in_rx.try_recv() {
            match input {
                ShardIn::View(_seq, cfg) => kv.on_view(cfg, now, &mut out),
                ShardIn::Msg(from, msg) => kv.on_message(from, msg, now, &mut out),
                ShardIn::NoteInterval(p50, p99) => kv.note_interval(p50, p99),
                ShardIn::Stop => return,
            }
        }
        // Client submissions, one outbox-coalesced burst per pass.
        let mut burst: Vec<RealOp> = Vec::new();
        while let Ok(op) = ops_rx.try_recv() {
            burst.push(op);
        }
        if !burst.is_empty() {
            let client_ops: Vec<ClientOp<'_>> = burst
                .iter()
                .map(|op| match op {
                    RealOp::Put { key, val, .. } => ClientOp::Put { key, val },
                    RealOp::Get { key, .. } => ClientOp::Get { key },
                })
                .collect();
            let reqs = kv.client_ops(&client_ops, now, &mut out);
            for (req, op) in reqs.into_iter().zip(burst) {
                let reply = match op {
                    RealOp::Put { reply, .. } | RealOp::Get { reply, .. } => reply,
                };
                replies.insert(req, reply);
            }
        }
        // Timers + snapshot publication on the digest cadence.
        if Instant::now() >= next_tick {
            kv.on_tick(now, &mut out);
            next_tick = Instant::now() + Duration::from_millis(20);
            let mut p = slot.lock();
            p.stats = *kv.stats();
            p.inbox_depth = kv.inbox_depth();
            p.client_conns = kv.client_conns();
            p.digests = kv.digest_snapshot();
            p.op_hist = kv.op_hist().clone();
        }
        for item in out.drain(..) {
            match item {
                KvOut::Send(to, msg) => {
                    let mut buf = Vec::with_capacity(kv::encoded_len(&msg));
                    kv::encode(&msg, &mut buf);
                    sender.send_app(to, buf);
                }
                KvOut::Done(req, outcome) => {
                    if let Some(reply) = replies.remove(&req) {
                        let _ = reply.try_send(outcome);
                    }
                }
            }
        }
    }
}

/// The membership plane of a sharded process: owns the transport, fans
/// sequenced view adoptions out to every shard, splits inbound app
/// frames by owning shard with [`kv::shard_route`], and merges the
/// shards' published snapshots into the process-level [`Mirror`] (plus
/// per-shard depth/ops series on the timeline cadence).
#[allow(clippy::too_many_arguments)]
fn membership_worker(
    rt: Runtime,
    mut shards: Vec<Shard>,
    ctl_rx: Receiver<RealCtl>,
    mirror: Arc<Mutex<Mirror>>,
    pubs: Vec<Arc<Mutex<ShardPub>>>,
    partitions: u32,
    obs_sample_ms: u64,
    start: Instant,
) {
    let w = shards.len();
    let mut view_count = 0u64;
    let mut view_seq = 0u64;
    let mut timeline = if obs_sample_ms > 0 {
        Timeline::new(DEFAULT_TIMELINE_CAP)
    } else {
        Timeline::new(0)
    };
    let mut cursor = TimelinePoint::default();
    let mut shard_ops_cursor = vec![0u64; w];
    let mut prev_hist = LatencyHist::new();
    let mut next_sample = Instant::now() + Duration::from_millis(obs_sample_ms.max(1));
    let mut next_merge = Instant::now();
    // A seed's one-member view is installed before the shards spawn;
    // broadcast it as adoption #1 so every shard subscribes immediately.
    if rt.status() == NodeStatus::Active {
        view_seq += 1;
        let cfg = ViewChange::initial(rt.view()).configuration;
        for s in &shards {
            let _ = s.tx.send(ShardIn::View(view_seq, Arc::clone(&cfg)));
        }
    }
    loop {
        match ctl_rx.try_recv() {
            Ok(RealCtl::Leave) => {
                stop_shards(&mut shards);
                rt.leave();
                mirror.lock().status = NodeStatus::Left;
                return;
            }
            Ok(RealCtl::Shutdown) => {
                stop_shards(&mut shards);
                rt.shutdown_now();
                return;
            }
            Err(_) => {}
        }
        match rt.events().recv_timeout(Duration::from_millis(5)) {
            Ok(AppEvent::View(vc)) => {
                view_count += 1;
                view_seq += 1;
                for s in &shards {
                    let _ = s
                        .tx
                        .send(ShardIn::View(view_seq, Arc::clone(&vc.configuration)));
                }
            }
            Ok(AppEvent::Joined(config)) => {
                view_seq += 1;
                for s in &shards {
                    let _ = s.tx.send(ShardIn::View(view_seq, Arc::clone(&config)));
                }
            }
            Ok(AppEvent::App(from, bytes)) => {
                // Corrupt peer payloads are dropped, like the transport
                // does. Routed sends block on a full shard inbox — data
                // frames are never silently dropped here.
                if let Ok(msg) = kv::decode(&bytes) {
                    for (idx, part) in kv::shard_route(msg, partitions, w) {
                        let _ = shards[idx].tx.send(ShardIn::Msg(from, part));
                    }
                }
            }
            Ok(AppEvent::Kicked) | Err(_) => {}
        }
        // Merge + publish on the digest cadence, not every pass: the
        // shard snapshots only refresh that often anyway.
        if Instant::now() >= next_merge {
            next_merge = Instant::now() + Duration::from_millis(20);
            let mut stats = KvStats::default();
            let mut inbox_depth = 0usize;
            let mut client_conns = 0usize;
            let mut digests: Vec<(u32, PartitionDigest, bool)> = Vec::new();
            let mut hist = LatencyHist::new();
            // (depth, cumulative ops) per shard, for the series below.
            let mut per_shard: Vec<(u64, u64)> = Vec::with_capacity(w);
            for slot in &pubs {
                let p = slot.lock();
                stats.absorb(&p.stats);
                inbox_depth += p.inbox_depth;
                client_conns += p.client_conns;
                digests.extend_from_slice(&p.digests);
                hist.merge(&p.op_hist);
                per_shard.push((p.inbox_depth as u64, p.stats.puts_acked + p.stats.gets_ok));
            }
            digests.sort_unstable_by_key(|&(p, _, _)| p);
            let ops = stats.puts_acked + stats.gets_ok;
            let mut fresh_timeline = false;
            let mut shard_points: Vec<ShardPoint> = Vec::new();
            if timeline.enabled() && Instant::now() >= next_sample {
                let (_, p50, p99) = hist.interval_quantiles(&prev_hist);
                // Broadcast the merged latency signal so every shard's
                // admission controller sees the same process-level p99.
                for s in &shards {
                    let _ = s.tx.send(ShardIn::NoteInterval(p50, p99));
                }
                let t_ms = start.elapsed().as_millis() as u64;
                timeline.push(TimelinePoint {
                    t_ms,
                    msgs: 0,
                    bytes: 0,
                    alerts: 0,
                    view_changes: view_count - cursor.view_changes,
                    ops: ops - cursor.ops,
                    handoff_bytes: stats.bytes_moved - cursor.handoff_bytes,
                    repair_bytes: stats.repair_bytes - cursor.repair_bytes,
                    p50_ms: p50,
                    p99_ms: p99,
                });
                cursor = TimelinePoint {
                    t_ms,
                    msgs: 0,
                    bytes: 0,
                    alerts: 0,
                    view_changes: view_count,
                    ops,
                    handoff_bytes: stats.bytes_moved,
                    repair_bytes: stats.repair_bytes,
                    p50_ms: 0,
                    p99_ms: 0,
                };
                prev_hist = hist.clone();
                next_sample += Duration::from_millis(obs_sample_ms);
                fresh_timeline = true;
                // Series carry interval deltas, like the timeline.
                shard_points = per_shard
                    .iter()
                    .enumerate()
                    .map(|(i, &(depth, cum))| {
                        let delta = cum.saturating_sub(shard_ops_cursor[i]);
                        shard_ops_cursor[i] = cum;
                        ShardPoint {
                            t_ms,
                            depth,
                            ops: delta,
                        }
                    })
                    .collect();
            }
            let mut m = mirror.lock();
            m.status = rt.status();
            m.view_len = rt.view().len();
            m.view_count = view_count;
            m.stats = stats;
            m.inbox_depth = inbox_depth;
            m.client_conns = client_conns;
            m.quota_dropped = rt.quota_dropped();
            m.digests = digests;
            m.op_hist = hist;
            for (i, &(depth, ops)) in per_shard.iter().enumerate() {
                m.shard_depths[i] = depth;
                m.shard_ops[i] = ops;
            }
            if fresh_timeline {
                m.timeline = timeline.iter_in_order().copied().collect();
                m.timeline_dropped = timeline.dropped();
                for (i, pt) in shard_points.into_iter().enumerate() {
                    push_shard_point(&mut m.shard_series[i], pt);
                }
            }
        }
    }
}

/// A smart client hosted on the real transport: a [`KvClient`] state
/// machine driven from an [`AppPeer`]'s event stream on a dedicated
/// worker thread. The `AppPeer` keeps one pooled TCP stream per
/// destination, so steady-state traffic holds exactly one connection per
/// partition leader — the per-leader connection pooling the client plane
/// promises. The client never joins the membership; it learns views
/// purely from `Sub`/`View` push frames.
pub struct KvClientRuntime {
    addr: Endpoint,
    ops_tx: Sender<RealOp>,
    ctl_tx: Sender<RealCtl>,
    published: Arc<Mutex<(ClientStats, LatencyHist, Option<u64>)>>,
    handle: Option<JoinHandle<()>>,
}

impl KvClientRuntime {
    /// Starts a client worker subscribing through `seeds` (cluster
    /// listen addresses), with placement spec `route` (must match the
    /// cluster's), an in-flight window, and a per-op deadline.
    pub fn start(
        seeds: Vec<Endpoint>,
        route: PlacementConfig,
        window: usize,
        op_timeout_ms: u64,
    ) -> std::io::Result<KvClientRuntime> {
        let peer = AppPeer::start(Endpoint::new("127.0.0.1", 0))?;
        let addr = *peer.addr();
        let client = KvClient::new(addr, route, seeds, window, op_timeout_ms);
        let (ops_tx, ops_rx) = bounded::<RealOp>(16 * 1024);
        let (ctl_tx, ctl_rx) = bounded::<RealCtl>(16);
        let published = Arc::new(Mutex::new((
            ClientStats::default(),
            LatencyHist::new(),
            None,
        )));
        let worker_pub = Arc::clone(&published);
        let handle = std::thread::spawn(move || {
            client_worker(peer, client, ops_rx, ctl_rx, worker_pub);
        });
        Ok(KvClientRuntime {
            addr,
            ops_tx,
            ctl_tx,
            published,
            handle: Some(handle),
        })
    }

    /// The client's listen address (what nodes see as the subscriber).
    pub fn addr(&self) -> Endpoint {
        self.addr
    }

    /// Latest published client-observed counters.
    pub fn stats(&self) -> ClientStats {
        self.published.lock().0
    }

    /// Latest published client-observed op-latency histogram (ms).
    pub fn op_hist(&self) -> LatencyHist {
        self.published.lock().1.clone()
    }

    /// The adopted view's sequence, once the first push landed.
    pub fn view_seq(&self) -> Option<u64> {
        self.published.lock().2
    }

    /// Begins a write through the smart client; the outcome arrives on
    /// the returned channel.
    pub fn begin_put(&self, key: &str, val: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Put {
            key: key.to_string(),
            val: val.to_string(),
            reply,
        });
        rx
    }

    /// Begins a read through the smart client.
    pub fn begin_get(&self, key: &str) -> Receiver<KvOutcome> {
        let (reply, rx) = bounded(1);
        let _ = self.ops_tx.try_send(RealOp::Get {
            key: key.to_string(),
            reply,
        });
        rx
    }

    /// Stops the worker and the peer's sockets.
    pub fn shutdown_now(mut self) {
        let _ = self.ctl_tx.send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvClientRuntime {
    fn drop(&mut self) {
        let _ = self.ctl_tx.try_send(RealCtl::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn client_worker(
    peer: AppPeer,
    mut client: KvClient,
    ops_rx: Receiver<RealOp>,
    ctl_rx: Receiver<RealCtl>,
    published: Arc<Mutex<(ClientStats, LatencyHist, Option<u64>)>>,
) {
    let mut out: Vec<KvOut> = Vec::new();
    let mut replies: DetHashMap<u64, Sender<KvOutcome>> = DetHashMap::default();
    let start = Instant::now();
    let mut next_tick = Instant::now();
    loop {
        if ctl_rx.try_recv().is_ok() {
            peer.shutdown_now();
            return;
        }
        let now = start.elapsed().as_millis() as u64;
        // Inbound view pushes and verdicts.
        if let Ok((from, bytes)) = peer.events().recv_timeout(Duration::from_millis(5)) {
            if let Ok(msg) = kv::decode(&bytes) {
                client.on_message(from, msg, now, &mut out);
            }
        }
        // Client submissions, one pipelined burst per pass.
        let mut burst: Vec<RealOp> = Vec::new();
        while let Ok(op) = ops_rx.try_recv() {
            burst.push(op);
        }
        if !burst.is_empty() {
            let client_ops: Vec<ClientOp<'_>> = burst
                .iter()
                .map(|op| match op {
                    RealOp::Put { key, val, .. } => ClientOp::Put { key, val },
                    RealOp::Get { key, .. } => ClientOp::Get { key },
                })
                .collect();
            let reqs = client.submit_ops(&client_ops, now, &mut out);
            for (req, op) in reqs.into_iter().zip(burst) {
                let reply = match op {
                    RealOp::Put { reply, .. } | RealOp::Get { reply, .. } => reply,
                };
                replies.insert(req, reply);
            }
        }
        if Instant::now() >= next_tick {
            client.on_tick(now, &mut out);
            next_tick = Instant::now() + Duration::from_millis(20);
        }
        for item in out.drain(..) {
            match item {
                KvOut::Send(to, msg) => {
                    let mut buf = Vec::with_capacity(kv::encoded_len(&msg));
                    kv::encode(&msg, &mut buf);
                    peer.send_app(to, buf);
                }
                KvOut::Done(req, outcome) => {
                    if let Some(reply) = replies.remove(&req) {
                        let _ = reply.try_send(outcome);
                    }
                }
            }
        }
        {
            let mut p = published.lock();
            p.0 = *client.stats();
            p.1 = client.op_hist().clone();
            p.2 = client.view_seq();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            tick_interval_ms: 20,
            fd_probe_interval_ms: 200,
            fd_probe_timeout_ms: 200,
            consensus_fallback_base_ms: 1_500,
            consensus_fallback_jitter_ms: 500,
            join_timeout_ms: 1_000,
            gossip_interval_ms: 50,
            ..Settings::default()
        }
    }

    fn spec() -> PlacementConfig {
        PlacementConfig {
            partitions: 8,
            replication: 2,
        }
    }

    fn wait_for<F: FnMut() -> bool>(mut f: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    #[test]
    fn real_timeline_samples_ops_and_introspection_reports_them() {
        // The env gate is read once at startup; set it before the
        // runtime exists. Harmless to the other test in this module
        // (it would merely also serve a status socket).
        std::env::set_var("RAPID_INTROSPECT", "1");
        let settings = Settings {
            obs_sample_ms: 100,
            ..fast_settings()
        };
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings,
            spec(),
            2_000,
            500,
        )
        .unwrap();
        std::env::remove_var("RAPID_INTROSPECT");
        assert!(wait_for(
            || seed.status() == NodeStatus::Active,
            Duration::from_secs(10)
        ));
        for i in 0..8 {
            let rx = seed.begin_put(&format!("tk{i}"), "tv");
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(KvOutcome::Acked { .. })
            ));
        }
        // Wall-clock sweeps land on the 100 ms cadence; the delta sums
        // must recover the cumulative op count.
        assert!(
            wait_for(
                || seed.timeline().iter().map(|p| p.ops).sum::<u64>() >= 8,
                Duration::from_secs(10)
            ),
            "timeline deltas must sum to the acked ops: {:?}",
            seed.timeline()
        );
        assert_eq!(seed.timeline_dropped(), 0);
        let probe = seed.introspect_addr().expect("introspection enabled by env");
        let mut conn = std::net::TcpStream::connect(probe).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut body = String::new();
        use std::io::Read as _;
        conn.read_to_string(&mut body).unwrap();
        assert!(body.contains("\"status\":\"Active\""), "{body:?}");
        assert!(body.contains("\"puts_acked\":8"), "{body:?}");
        assert!(body.contains("\"op_p99_ms\":"), "{body:?}");
        // Client-plane overload observability rides the same line.
        assert!(body.contains("\"inbox_depth\":"), "{body:?}");
        assert!(body.contains("\"shed_ops\":0"), "{body:?}");
        assert!(body.contains("\"client_conns\":"), "{body:?}");
        assert!(body.contains("\"quota_dropped\":0"), "{body:?}");
        seed.shutdown_now();
    }

    #[test]
    fn real_smart_client_subscribes_routes_and_completes_ops() {
        let settings = fast_settings();
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings.clone(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        let seed_addr = seed.addr();
        let joiner = KvRuntime::start_joiner(
            Endpoint::new("127.0.0.1", 0),
            vec![seed_addr],
            settings,
            rapid_core::Metadata::new(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        assert!(
            wait_for(
                || seed.view_len() == 2 && joiner.view_len() == 2,
                Duration::from_secs(30)
            ),
            "2-node cluster must form"
        );
        let client = KvClientRuntime::start(vec![seed_addr], spec(), 64, 5_000).unwrap();
        assert!(
            wait_for(|| client.view_seq().is_some(), Duration::from_secs(10)),
            "client must adopt a pushed view"
        );
        for i in 0..10 {
            let rx = client.begin_put(&format!("sk{i}"), &format!("sv{i}"));
            assert!(
                matches!(rx.recv_timeout(Duration::from_secs(10)), Ok(KvOutcome::Acked { .. })),
                "client put {i} must ack"
            );
        }
        for i in 0..10 {
            let rx = client.begin_get(&format!("sk{i}"));
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(KvOutcome::Found { val, .. }) => assert_eq!(val, format!("sv{i}")),
                other => panic!("client get {i}: {other:?}"),
            }
        }
        let cs = client.stats();
        assert_eq!(cs.acked, 10, "{cs:?}");
        assert_eq!(cs.found, 10, "{cs:?}");
        assert_eq!(cs.shed, 0, "{cs:?}");
        assert!(cs.views_adopted >= 1);
        let (p50, p99, _) = client.op_hist().percentiles();
        assert!(p50 <= p99, "client-observed quantiles sane");
        // The subscription is visible server-side.
        assert!(
            wait_for(|| seed.client_conns() >= 1, Duration::from_secs(5)),
            "seed must count the subscribed client"
        );
        client.shutdown_now();
        joiner.shutdown_now();
        seed.shutdown_now();
    }

    #[test]
    fn real_kv_cluster_serves_and_survives_a_crash() {
        let settings = fast_settings();
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings.clone(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        let seed_addr = seed.addr();
        let mut joiners = Vec::new();
        for i in 0..3 {
            joiners.push(
                KvRuntime::start_joiner(
                    Endpoint::new("127.0.0.1", 0),
                    vec![seed_addr],
                    settings.clone(),
                    rapid_core::Metadata::with_entry("proc", format!("{i}")),
                    spec(),
                    2_000,
                    500,
                )
                .unwrap(),
            );
        }
        assert!(
            wait_for(
                || seed.view_len() == 4 && joiners.iter().all(|j| j.view_len() == 4),
                Duration::from_secs(30)
            ),
            "4-node KV cluster must form, seed sees {}",
            seed.view_len()
        );

        // Write through different coordinators, read through others.
        let mut acked = Vec::new();
        for i in 0..12 {
            let via = if i % 2 == 0 { &seed } else { &joiners[i % 3] };
            let rx = via.begin_put(&format!("rk{i}"), &format!("rv{i}"));
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(KvOutcome::Acked { version }) => acked.push((format!("rk{i}"), version)),
                other => panic!("put {i} failed: {other:?}"),
            }
        }

        // Crash one joiner; the survivors rebalance and keep serving.
        let victim = joiners.pop().unwrap();
        victim.shutdown_now();
        assert!(
            wait_for(
                || seed.view_len() == 3 && joiners.iter().all(|j| j.view_len() == 3),
                Duration::from_secs(60)
            ),
            "crashed node must be removed everywhere"
        );
        // Give handoffs a moment, then verify every acked write.
        std::thread::sleep(Duration::from_millis(500));
        for (key, version) in &acked {
            let got = (|| {
                for _ in 0..40 {
                    let rx = joiners[0].begin_get(key);
                    match rx.recv_timeout(Duration::from_secs(5)) {
                        Ok(KvOutcome::Found { val, version: v }) => return Some((val, v)),
                        _ => std::thread::sleep(Duration::from_millis(250)),
                    }
                }
                None
            })();
            match got {
                Some((val, v)) => {
                    assert!(val.starts_with("rv"), "garbage value for {key}");
                    assert!(v >= *version, "version went backwards for {key}");
                }
                None => {
                    eprintln!("seed stats: {:?}", seed.stats());
                    for (i, j) in joiners.iter().enumerate() {
                        eprintln!("joiner{i} stats: {:?}", j.stats());
                    }
                    panic!("acked key {key} lost after crash");
                }
            }
        }
        let stats = seed.stats();
        assert!(stats.rebalances >= 1, "seed must have rebalanced: {stats:?}");
        for j in joiners {
            j.shutdown_now();
        }
        seed.shutdown_now();
    }

    #[test]
    fn start_seed_rejects_more_shards_than_partitions() {
        let settings = Settings {
            kv_shards: 9,
            ..fast_settings()
        };
        let err =
            match KvRuntime::start_seed(Endpoint::new("127.0.0.1", 0), settings, spec(), 2_000, 0)
            {
                Err(e) => e,
                Ok(_) => panic!("9 shards cannot cover 8 partitions"),
            };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("kv_shards"), "{err}");
    }

    #[test]
    fn real_sharded_runtime_serves_ops_and_publishes_per_shard_series() {
        let settings = Settings {
            kv_shards: 2,
            obs_sample_ms: 100,
            ..fast_settings()
        };
        let seed = KvRuntime::start_seed(
            Endpoint::new("127.0.0.1", 0),
            settings.clone(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        let seed_addr = seed.addr();
        let joiner = KvRuntime::start_joiner(
            Endpoint::new("127.0.0.1", 0),
            vec![seed_addr],
            settings,
            rapid_core::Metadata::new(),
            spec(),
            2_000,
            500,
        )
        .unwrap();
        assert_eq!(seed.shards(), 2);
        assert!(
            wait_for(
                || seed.view_len() == 2 && joiner.view_len() == 2,
                Duration::from_secs(30)
            ),
            "2-node sharded cluster must form"
        );
        // Writes through both coordinators, reads through the other.
        for i in 0..16 {
            let via = if i % 2 == 0 { &seed } else { &joiner };
            let rx = via.begin_put(&format!("shk{i}"), &format!("shv{i}"));
            assert!(
                matches!(
                    rx.recv_timeout(Duration::from_secs(5)),
                    Ok(KvOutcome::Acked { .. })
                ),
                "sharded put {i} must ack"
            );
        }
        for i in 0..16 {
            let rx = joiner.begin_get(&format!("shk{i}"));
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(KvOutcome::Found { val, .. }) => assert_eq!(val, format!("shv{i}")),
                other => panic!("sharded get {i} failed: {other:?}"),
            }
        }
        // Merged stats must cover every acked op across both processes.
        assert!(
            wait_for(
                || seed.stats().puts_acked + joiner.stats().puts_acked >= 16,
                Duration::from_secs(5)
            ),
            "merged per-shard stats must cover all acked puts"
        );
        assert_eq!(seed.shard_depths().len(), 2);
        assert!(
            wait_for(
                || {
                    seed.shard_timeline()
                        .iter()
                        .flatten()
                        .map(|p| p.ops)
                        .sum::<u64>()
                        >= 1
                },
                Duration::from_secs(10)
            ),
            "per-shard series must record completed ops"
        );
        // The merged digest snapshot lists each partition exactly once.
        assert!(
            wait_for(
                || {
                    let d = seed.digest_snapshot();
                    let mut parts: Vec<u32> = d.iter().map(|&(p, _, _)| p).collect();
                    parts.dedup();
                    !d.is_empty() && parts.len() == d.len()
                },
                Duration::from_secs(10)
            ),
            "sharded digest snapshot must merge without duplicates"
        );
        joiner.shutdown_now();
        seed.shutdown_now();
    }
}
