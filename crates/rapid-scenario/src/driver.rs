//! Scenario execution backends.
//!
//! One [`Driver`] trait, two implementations:
//!
//! * [`SimDriver`] — the deterministic discrete-event simulator
//!   ([`crate::world::World`]), hosting any compared system. Time is
//!   virtual; runs are pure functions of the seed.
//! * [`RealDriver`] — a multi-threaded [`rapid_transport::Runtime`]
//!   cluster on loopback TCP. Time is wall-clock; only fault kinds a real
//!   process can experience (crashes, voluntary leaves, joins) are
//!   supported, and timing-derived report fields vary run to run.
//!
//! The runner treats `Err(Unsupported)` from a driver as a scenario
//! authoring error — a scenario meant for both drivers must stick to the
//! shared vocabulary (see `docs/SCENARIOS.md`).

use std::time::{Duration, Instant};

use rapid_core::id::Endpoint;
use rapid_core::node::NodeStatus;
use rapid_core::obs::LatencyHist;
use rapid_core::settings::Settings;
use rapid_route::real::KvClientRuntime;
use rapid_route::{ClientStats, KvOutcome, KvRuntime, KvStats};
use rapid_sim::Fault;
use rapid_transport::{AppEvent, Runtime};

use crate::model::{KvSpec, Scenario, SubmitMode, Topology};
use crate::world::{KvOp, SystemKind, TrafficTotals, World};

/// A workload action with targets resolved to cluster-process indices.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolvedWorkload {
    /// Start `count` fresh joiners.
    Join(usize),
    /// Voluntary departure of these processes.
    Leave(Vec<usize>),
}

/// Why a driver refused an action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An execution backend for scenarios. All indices are in cluster-process
/// space (`0..n`); auxiliary ensembles are the driver's business.
pub trait Driver {
    /// Display label (`sim:rapid`, `real:rapid`, ...).
    fn label(&self) -> String;

    /// Current driver time in ms (virtual or wall-clock since start).
    fn now_ms(&self) -> u64;

    /// Runs until driver time `t_ms` (no-op if already past).
    fn run_until(&mut self, t_ms: u64);

    /// Schedules a fault at absolute driver time `at_ms`.
    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported>;

    /// Applies a workload action now.
    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported>;

    /// Cluster-size observation of each live process.
    fn observations(&self) -> Vec<Option<f64>>;

    /// Runs until every live process reports `target` (checked once per
    /// second of driver time); returns the convergence instant.
    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64>;

    /// Cumulative view changes, where tracked.
    fn view_changes(&self) -> Option<u64>;

    /// Aggregate traffic counters, where metered.
    fn traffic_totals(&self) -> Option<TrafficTotals>;

    /// Whether all view histories agree, where inspectable.
    fn consistent_histories(&self) -> Option<bool>;

    /// Runs a batch of KV client operations through coordinator `via`
    /// (`None` = driver's choice of a live process) and returns one
    /// outcome per op. Only drivers hosting the `[kv]` data plane
    /// support this.
    fn kv_batch(&mut self, via: Option<usize>, ops: &[KvOp]) -> Result<Vec<KvOutcome>, Unsupported> {
        let _ = (via, ops);
        Err(Unsupported(
            "this driver hosts no KV data plane (scenario lacks [kv], or the system \
             is not rapid)"
                .into(),
        ))
    }

    /// Aggregate data-plane counters, where hosted.
    fn kv_stats(&self) -> Option<KvStats> {
        None
    }

    /// Smart-client plane counters and the merged client-observed
    /// op-latency histogram, where ops are submitted through
    /// view-subscribed clients (`None` in coordinator mode or when no
    /// client plane is hosted).
    fn kv_client_stats(&self) -> Option<(ClientStats, LatencyHist)> {
        None
    }

    /// Polls (up to `within_ms`) until anti-entropy has converged: every
    /// live replica of every partition reports the same digest and none
    /// is still awaiting a handoff. `None` = the driver hosts no KV data
    /// plane (recorded as a skip).
    fn kv_converged(&mut self, within_ms: u64) -> Option<bool> {
        let _ = within_ms;
        None
    }

    /// Driver time of each live process's *last* view install, where the
    /// driver records per-process view logs (`None` = untracked). Feeds
    /// the per-phase fault→install convergence samples in the report.
    fn view_install_times(&self) -> Option<Vec<u64>> {
        None
    }

    /// Flight-recorder dump: every held trace event across the cluster,
    /// merged into deterministic JSONL order. Empty when recording is
    /// off or the driver doesn't capture traces.
    fn flight_dump(&self) -> Vec<String> {
        Vec::new()
    }

    /// Metrics-timeline dump: every held sample across the cluster as
    /// JSONL lines in `(t, node)` order. Empty when `obs_sample_ms` is 0
    /// or the driver doesn't sample.
    fn metrics_dump(&self) -> Vec<String> {
        Vec::new()
    }

    /// Every held timeline point as `(t_ms, process_index, point)` in
    /// `(t, process)` order, for report aggregation.
    fn timeline_points(&self) -> Vec<(u64, usize, rapid_core::obs::TimelinePoint)> {
        Vec::new()
    }

    /// Total events lost to bounded observability rings wrapping.
    fn obs_dropped(&self) -> u64 {
        0
    }
}

/// Whether one poll of `(partition, digest, settled)` snapshots (one
/// vector per live process) shows a fully converged data plane: no
/// partition awaited anywhere, and all replicas of a partition agree on
/// its digest. Shared by both drivers so the definition cannot drift.
pub(crate) fn digest_snapshots_converged(
    snapshots: &[Vec<(u32, rapid_route::PartitionDigest, bool)>],
) -> bool {
    let mut per_part: rapid_core::hash::DetHashMap<u32, rapid_route::PartitionDigest> =
        rapid_core::hash::DetHashMap::default();
    let mut saw_any = false;
    for snap in snapshots {
        for &(p, d, settled) in snap {
            if !settled {
                return false;
            }
            saw_any = true;
            match per_part.get(&p) {
                None => {
                    per_part.insert(p, d);
                }
                Some(prev) if *prev != d => return false,
                Some(_) => {}
            }
        }
    }
    saw_any
}

// ---------------------------------------------------------------------------
// Simulator driver
// ---------------------------------------------------------------------------

/// Runs scenarios on the deterministic simulator.
pub struct SimDriver {
    world: World,
    /// The scenario's applied `[settings]` overrides, if any — joiners
    /// spawned by `join` workloads must run the same parameters as the
    /// rest of the cluster.
    settings: Option<Settings>,
}

impl SimDriver {
    /// Default per-node flight-recorder capacity for rapid-family sim
    /// runs (a failed expectation then dumps recent protocol history).
    /// Scenarios opt out with an explicit `obs_ring = 0` override.
    pub const DEFAULT_OBS_RING: usize = 256;

    /// Builds the world a scenario describes, hosting `kind` — with the
    /// scenario's `[settings]` overrides and `[kv]` data plane applied.
    pub fn new(kind: SystemKind, scenario: &Scenario) -> Result<SimDriver, String> {
        let mut settings = if scenario.settings.is_empty() {
            None
        } else {
            Some(scenario.settings.apply(Settings::default())?)
        };
        // Baselines reject explicit settings entirely, so the recorder
        // default applies only to the rapid family.
        if matches!(kind, SystemKind::Rapid | SystemKind::RapidC)
            && scenario.settings.obs_ring.is_none()
        {
            let mut s = settings.take().unwrap_or_default();
            s.obs_ring = Self::DEFAULT_OBS_RING;
            settings = Some(s);
        }
        let world = match scenario.topology {
            Topology::Bootstrap => World::bootstrap_cfg(
                kind,
                scenario.n,
                scenario.seed,
                settings.clone(),
                scenario.kv,
            )?,
            Topology::Static => {
                World::static_cfg(kind, scenario.n, scenario.seed, settings.clone(), scenario.kv)?
            }
        };
        Ok(SimDriver { world, settings })
    }

    /// The underlying world (post-run analysis: samples, rates, ...).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Consumes the driver, returning the world.
    pub fn into_world(self) -> World {
        self.world
    }
}

impl Driver for SimDriver {
    fn label(&self) -> String {
        format!("sim:{}", self.world.kind_label())
    }

    fn now_ms(&self) -> u64 {
        self.world.now()
    }

    fn run_until(&mut self, t_ms: u64) {
        self.world.run_until(t_ms);
    }

    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported> {
        self.world.schedule_cluster_fault(at_ms, fault);
        Ok(())
    }

    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported> {
        match w {
            ResolvedWorkload::Join(count) => self
                .world
                .join_cfg(*count, self.settings.clone())
                .map_err(Unsupported),
            ResolvedWorkload::Leave(idxs) => {
                for &i in idxs {
                    self.world.leave(i).map_err(Unsupported)?;
                }
                Ok(())
            }
        }
    }

    fn observations(&self) -> Vec<Option<f64>> {
        self.world.observations()
    }

    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64> {
        self.world.converge(target, within_ms)
    }

    fn view_changes(&self) -> Option<u64> {
        self.world.view_changes()
    }

    fn traffic_totals(&self) -> Option<TrafficTotals> {
        Some(self.world.traffic_totals())
    }

    fn consistent_histories(&self) -> Option<bool> {
        self.world.consistent_histories()
    }

    fn view_install_times(&self) -> Option<Vec<u64>> {
        self.world.view_install_times()
    }

    fn flight_dump(&self) -> Vec<String> {
        self.world.flight_dump()
    }

    fn metrics_dump(&self) -> Vec<String> {
        self.world.metrics_dump()
    }

    fn timeline_points(&self) -> Vec<(u64, usize, rapid_core::obs::TimelinePoint)> {
        self.world.timeline_points()
    }

    fn obs_dropped(&self) -> u64 {
        self.world.obs_dropped()
    }

    fn kv_batch(&mut self, via: Option<usize>, ops: &[KvOp]) -> Result<Vec<KvOutcome>, Unsupported> {
        self.world.kv_batch(via, ops).map_err(Unsupported)
    }

    fn kv_stats(&self) -> Option<KvStats> {
        self.world.kv_stats()
    }

    fn kv_client_stats(&self) -> Option<(ClientStats, LatencyHist)> {
        Some((self.world.kv_client_stats()?, self.world.kv_client_hist()?))
    }

    fn kv_converged(&mut self, within_ms: u64) -> Option<bool> {
        self.world.kv_digest_snapshots()?;
        let deadline = self.world.now() + within_ms;
        loop {
            let snaps = self.world.kv_digest_snapshots()?;
            if digest_snapshots_converged(&snaps) {
                return Some(true);
            }
            if self.world.now() >= deadline {
                return Some(false);
            }
            let next = (self.world.now() + 500).min(deadline);
            self.world.run_until(next);
        }
    }
}

// ---------------------------------------------------------------------------
// Real-transport driver
// ---------------------------------------------------------------------------

/// Cap on real processes per scenario: each one is a thread cluster with
/// a listener, and a scenario asking for hundreds is a mistake, not a
/// load test.
const MAX_REAL_NODES: usize = 64;

/// Poll cadence for the wall-clock event loop.
const POLL: Duration = Duration::from_millis(20);

/// One real process: a bare membership runtime, or one with the KV data
/// plane attached (scenarios with a `[kv]` table).
enum Proc {
    Plain(Runtime),
    Kv(KvRuntime),
}

impl Proc {
    fn status(&self) -> NodeStatus {
        match self {
            Proc::Plain(rt) => rt.status(),
            Proc::Kv(rt) => rt.status(),
        }
    }

    fn view_len(&self) -> usize {
        match self {
            Proc::Plain(rt) => rt.view().len(),
            Proc::Kv(rt) => rt.view_len(),
        }
    }

    fn leave(self) {
        match self {
            Proc::Plain(rt) => rt.leave(),
            Proc::Kv(rt) => rt.leave(),
        }
    }

    fn shutdown_now(self) {
        match self {
            Proc::Plain(rt) => rt.shutdown_now(),
            Proc::Kv(rt) => rt.shutdown_now(),
        }
    }
}

/// Runs scenarios on a real multi-threaded TCP cluster (loopback).
///
/// Process `i` of the scenario maps to the `i`-th runtime; the seed is
/// process 0. Whatever the scenario's topology, the cluster *bootstraps*
/// (a real deployment cannot start pre-converged) — scenarios meant for
/// both drivers begin with a `converge` expectation, which absorbs the
/// difference. Time budgets are wall-clock upper bounds; a healthy
/// cluster converges far sooner.
pub struct RealDriver {
    nodes: Vec<Option<Proc>>,
    view_counts: Vec<u64>,
    start: Instant,
    pending: Vec<(u64, usize)>, // (due_ms, process) crash schedule
    settings: Settings,
    kv: Option<KvSpec>,
    /// Counters of KV processes that have since crashed or left — their
    /// handoffs happened; the cumulative aggregate must not shrink.
    retired_kv_stats: KvStats,
    seed_addr: Endpoint,
    /// The smart client hosting `submit = "client"` batches, started on
    /// first use (one per driver: real scenarios submit batches
    /// sequentially, so one window-bounded client is representative).
    client: Option<KvClientRuntime>,
}

impl RealDriver {
    /// Starts `scenario.n` real processes on loopback, with the
    /// scenario's `[settings]` overrides and `[kv]` data plane applied.
    pub fn new(scenario: &Scenario) -> Result<RealDriver, String> {
        let settings = scenario.settings.apply(Self::default_settings())?;
        Self::with_settings(scenario, settings)
    }

    /// Protocol settings tuned for wall-clock scenario runs (sub-second
    /// probe cadence, seconds-scale consensus fallback).
    pub fn default_settings() -> Settings {
        Settings {
            tick_interval_ms: 20,
            fd_probe_interval_ms: 200,
            fd_probe_timeout_ms: 200,
            consensus_fallback_base_ms: 1_500,
            consensus_fallback_jitter_ms: 500,
            join_timeout_ms: 1_000,
            gossip_interval_ms: 50,
            ..Settings::default()
        }
    }

    /// Starts the cluster with explicit protocol settings.
    pub fn with_settings(scenario: &Scenario, settings: Settings) -> Result<RealDriver, String> {
        let n = scenario.n;
        if n == 0 || n > MAX_REAL_NODES {
            return Err(format!(
                "real driver supports 1..={MAX_REAL_NODES} processes, scenario wants {n}"
            ));
        }
        let kv = scenario.kv;
        let start_seed = || -> Result<Proc, String> {
            Ok(match kv {
                None => Proc::Plain(
                    Runtime::start_seed(Endpoint::new("127.0.0.1", 0), settings.clone())
                        .map_err(|e| format!("seed start failed: {e}"))?,
                ),
                Some(spec) => Proc::Kv(
                    KvRuntime::start_seed(
                        Endpoint::new("127.0.0.1", 0),
                        settings.clone(),
                        spec.placement(),
                        spec.op_timeout_ms(),
                        spec.repair_interval_ms,
                    )
                    .map_err(|e| format!("seed start failed: {e}"))?,
                ),
            })
        };
        let seed = start_seed()?;
        let seed_addr = match &seed {
            Proc::Plain(rt) => *rt.addr(),
            Proc::Kv(rt) => rt.addr(),
        };
        let mut nodes = vec![Some(seed)];
        for i in 1..n {
            nodes.push(Some(Self::start_joiner_proc(
                seed_addr,
                &settings,
                kv,
                &format!("{i}"),
            )?));
        }
        Ok(RealDriver {
            view_counts: vec![0; nodes.len()],
            nodes,
            start: Instant::now(),
            pending: Vec::new(),
            settings,
            kv,
            retired_kv_stats: KvStats::default(),
            seed_addr,
            client: None,
        })
    }

    fn start_joiner_proc(
        seed_addr: Endpoint,
        settings: &Settings,
        kv: Option<KvSpec>,
        tag: &str,
    ) -> Result<Proc, String> {
        let metadata = rapid_core::Metadata::with_entry("proc", tag);
        Ok(match kv {
            None => Proc::Plain(
                Runtime::start_joiner(
                    Endpoint::new("127.0.0.1", 0),
                    vec![seed_addr],
                    settings.clone(),
                    metadata,
                )
                .map_err(|e| format!("joiner {tag} start failed: {e}"))?,
            ),
            Some(spec) => Proc::Kv(
                KvRuntime::start_joiner(
                    Endpoint::new("127.0.0.1", 0),
                    vec![seed_addr],
                    settings.clone(),
                    metadata,
                    spec.placement(),
                    spec.op_timeout_ms(),
                    spec.repair_interval_ms,
                )
                .map_err(|e| format!("joiner {tag} start failed: {e}"))?,
            ),
        })
    }

    fn poll(&mut self) {
        let now = self.now_ms();
        // Fire due crashes.
        let mut due = Vec::new();
        self.pending.retain(|&(at, i)| {
            if at <= now {
                due.push(i);
                false
            } else {
                true
            }
        });
        for i in due {
            if let Some(rt) = self.nodes[i].take() {
                if let Proc::Kv(kv) = &rt {
                    self.retired_kv_stats.absorb(&kv.stats());
                }
                rt.shutdown_now();
            }
        }
        // View-change accounting: plain runtimes surface events here; KV
        // runtimes consume their own event stream and publish a counter.
        for (i, slot) in self.nodes.iter().enumerate() {
            match slot {
                Some(Proc::Plain(rt)) => {
                    while let Ok(ev) = rt.events().try_recv() {
                        if matches!(ev, AppEvent::View(_)) {
                            self.view_counts[i] += 1;
                        }
                    }
                }
                Some(Proc::Kv(rt)) => self.view_counts[i] = rt.view_count(),
                None => {}
            }
        }
    }

    /// Tears every process down (also runs on drop).
    pub fn shutdown(&mut self) {
        if let Some(c) = self.client.take() {
            c.shutdown_now();
        }
        for slot in &mut self.nodes {
            if let Some(rt) = slot.take() {
                rt.shutdown_now();
            }
        }
    }
}

impl Drop for RealDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Driver for RealDriver {
    fn label(&self) -> String {
        "real:rapid".to_string()
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn run_until(&mut self, t_ms: u64) {
        while self.now_ms() < t_ms {
            self.poll();
            let remaining = t_ms.saturating_sub(self.now_ms());
            std::thread::sleep(POLL.min(Duration::from_millis(remaining.max(1))));
        }
        self.poll();
    }

    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported> {
        match fault {
            Fault::Crash(i) => {
                if i >= self.nodes.len() {
                    return Err(Unsupported(format!("crash target {i} out of range")));
                }
                self.pending.push((at_ms, i));
                Ok(())
            }
            other => Err(Unsupported(format!(
                "the real driver cannot inject {other:?}; only process crashes, \
                 leaves, and joins exist outside the simulator"
            ))),
        }
    }

    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported> {
        match w {
            ResolvedWorkload::Join(count) => {
                for k in 0..*count {
                    let joiner = Self::start_joiner_proc(
                        self.seed_addr,
                        &self.settings,
                        self.kv,
                        &format!("j{k}"),
                    )
                    .map_err(Unsupported)?;
                    self.nodes.push(Some(joiner));
                    self.view_counts.push(0);
                }
                Ok(())
            }
            ResolvedWorkload::Leave(idxs) => {
                for &i in idxs {
                    if let Some(rt) = self.nodes.get_mut(i).and_then(Option::take) {
                        if let Proc::Kv(kv) = &rt {
                            self.retired_kv_stats.absorb(&kv.stats());
                        }
                        rt.leave();
                    }
                }
                Ok(())
            }
        }
    }

    fn observations(&self) -> Vec<Option<f64>> {
        self.nodes
            .iter()
            .flatten()
            .map(|rt| {
                (rt.status() == NodeStatus::Active).then(|| rt.view_len() as f64)
            })
            .collect()
    }

    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64> {
        let deadline = self.now_ms() + within_ms;
        loop {
            self.poll();
            if crate::world::obs_all_report(&self.observations(), target) {
                return Some(self.now_ms());
            }
            if self.now_ms() >= deadline {
                return None;
            }
            std::thread::sleep(POLL);
        }
    }

    fn view_changes(&self) -> Option<u64> {
        self.view_counts.iter().copied().max()
    }

    fn traffic_totals(&self) -> Option<TrafficTotals> {
        None
    }

    fn consistent_histories(&self) -> Option<bool> {
        None
    }

    fn kv_batch(&mut self, via: Option<usize>, ops: &[KvOp]) -> Result<Vec<KvOutcome>, Unsupported> {
        let Some(spec) = self.kv else {
            return Err(Unsupported(
                "this scenario has no [kv] table; the real driver hosts no data plane"
                    .into(),
            ));
        };
        // Collect one outcome per submitted op within the op window.
        let collect = |rxs: Vec<crossbeam::channel::Receiver<KvOutcome>>| -> Vec<KvOutcome> {
            let deadline = Instant::now() + Duration::from_millis(spec.op_window_ms);
            rxs.into_iter()
                .map(|rx| {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    rx.recv_timeout(budget.max(Duration::from_millis(1)))
                        .unwrap_or(KvOutcome::Failed)
                })
                .collect()
        };
        let outcomes = match spec.submit {
            SubmitMode::Client => {
                // Smart-client path: subscribe once, then route every op
                // directly to its partition leader.
                if self.client.is_none() {
                    let seeds: Vec<Endpoint> = self
                        .nodes
                        .iter()
                        .flatten()
                        .filter_map(|p| match p {
                            Proc::Kv(rt) => Some(rt.addr()),
                            Proc::Plain(_) => None,
                        })
                        .collect();
                    let client = KvClientRuntime::start(
                        seeds,
                        spec.placement(),
                        self.settings.client_window,
                        spec.op_timeout_ms(),
                    )
                    .map_err(|e| Unsupported(format!("smart client start failed: {e}")))?;
                    self.client = Some(client);
                }
                let rt = self.client.as_ref().expect("started above");
                let rxs: Vec<_> = ops
                    .iter()
                    .map(|op| match &op.put_val {
                        Some(v) => rt.begin_put(&op.key, v),
                        None => rt.begin_get(&op.key),
                    })
                    .collect();
                collect(rxs)
            }
            SubmitMode::Coordinator => {
                let idx = match via {
                    Some(i) => i,
                    None => self
                        .nodes
                        .iter()
                        .position(Option::is_some)
                        .ok_or_else(|| {
                            Unsupported("no live process to coordinate kv ops".into())
                        })?,
                };
                let Some(Proc::Kv(rt)) = self.nodes.get(idx).and_then(Option::as_ref) else {
                    return Err(Unsupported(format!(
                        "kv coordinator {idx} is out of range or crashed"
                    )));
                };
                let rxs: Vec<_> = ops
                    .iter()
                    .map(|op| match &op.put_val {
                        Some(v) => rt.begin_put(&op.key, v),
                        None => rt.begin_get(&op.key),
                    })
                    .collect();
                collect(rxs)
            }
        };
        self.poll();
        Ok(outcomes)
    }

    fn kv_client_stats(&self) -> Option<(ClientStats, LatencyHist)> {
        self.client.as_ref().map(|c| (c.stats(), c.op_hist()))
    }

    fn kv_stats(&self) -> Option<KvStats> {
        self.kv?;
        // Start from the retired processes' counters so cumulative
        // fields (bytes_moved, rebalances, ...) never shrink when a
        // contributor crashes — mirroring the sim world's aggregation.
        let mut stats = self.retired_kv_stats;
        for slot in self.nodes.iter().flatten() {
            if let Proc::Kv(rt) = slot {
                stats.absorb(&rt.stats());
            }
        }
        Some(stats)
    }

    fn metrics_dump(&self) -> Vec<String> {
        // Wall-clock sampling: each KV worker publishes its own series.
        // Points are merged in (t, process) order like the simulator's
        // dump, but timestamps are per-worker wall clocks — comparable
        // within a process, only roughly across them.
        let mut lines = Vec::new();
        for (t, i, p) in self.timeline_points() {
            let _ = t;
            let addr = match self.nodes.get(i).and_then(Option::as_ref) {
                Some(Proc::Kv(rt)) => rt.addr().to_string(),
                _ => format!("proc-{i}"),
            };
            lines.push(rapid_core::obs::timeline_jsonl(&addr, &p));
        }
        lines
    }

    fn timeline_points(&self) -> Vec<(u64, usize, rapid_core::obs::TimelinePoint)> {
        let mut points = Vec::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            if let Some(Proc::Kv(rt)) = slot {
                for p in rt.timeline() {
                    points.push((p.t_ms, i, p));
                }
            }
        }
        points.sort_by_key(|&(t, i, _)| (t, i));
        points
    }

    fn obs_dropped(&self) -> u64 {
        self.nodes
            .iter()
            .flatten()
            .map(|p| match p {
                Proc::Kv(rt) => rt.timeline_dropped(),
                Proc::Plain(_) => 0,
            })
            .sum()
    }

    fn kv_converged(&mut self, within_ms: u64) -> Option<bool> {
        self.kv?;
        let deadline = self.now_ms() + within_ms;
        loop {
            self.poll();
            let snaps: Vec<_> = self
                .nodes
                .iter()
                .flatten()
                .filter_map(|p| match p {
                    Proc::Kv(rt) => Some(rt.digest_snapshot()),
                    Proc::Plain(_) => None,
                })
                .collect();
            if digest_snapshots_converged(&snaps) {
                return Some(true);
            }
            if self.now_ms() >= deadline {
                return Some(false);
            }
            std::thread::sleep(POLL);
        }
    }
}
