//! Scenario execution backends.
//!
//! One [`Driver`] trait, two implementations:
//!
//! * [`SimDriver`] — the deterministic discrete-event simulator
//!   ([`crate::world::World`]), hosting any compared system. Time is
//!   virtual; runs are pure functions of the seed.
//! * [`RealDriver`] — a multi-threaded [`rapid_transport::Runtime`]
//!   cluster on loopback TCP. Time is wall-clock; only fault kinds a real
//!   process can experience (crashes, voluntary leaves, joins) are
//!   supported, and timing-derived report fields vary run to run.
//!
//! The runner treats `Err(Unsupported)` from a driver as a scenario
//! authoring error — a scenario meant for both drivers must stick to the
//! shared vocabulary (see `docs/SCENARIOS.md`).

use std::time::{Duration, Instant};

use rapid_core::id::Endpoint;
use rapid_core::node::NodeStatus;
use rapid_core::settings::Settings;
use rapid_sim::Fault;
use rapid_transport::{AppEvent, Runtime};

use crate::model::{Scenario, Topology};
use crate::world::{SystemKind, TrafficTotals, World};

/// A workload action with targets resolved to cluster-process indices.
#[derive(Clone, Debug, PartialEq)]
pub enum ResolvedWorkload {
    /// Start `count` fresh joiners.
    Join(usize),
    /// Voluntary departure of these processes.
    Leave(Vec<usize>),
}

/// Why a driver refused an action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An execution backend for scenarios. All indices are in cluster-process
/// space (`0..n`); auxiliary ensembles are the driver's business.
pub trait Driver {
    /// Display label (`sim:rapid`, `real:rapid`, ...).
    fn label(&self) -> String;

    /// Current driver time in ms (virtual or wall-clock since start).
    fn now_ms(&self) -> u64;

    /// Runs until driver time `t_ms` (no-op if already past).
    fn run_until(&mut self, t_ms: u64);

    /// Schedules a fault at absolute driver time `at_ms`.
    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported>;

    /// Applies a workload action now.
    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported>;

    /// Cluster-size observation of each live process.
    fn observations(&self) -> Vec<Option<f64>>;

    /// Runs until every live process reports `target` (checked once per
    /// second of driver time); returns the convergence instant.
    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64>;

    /// Cumulative view changes, where tracked.
    fn view_changes(&self) -> Option<u64>;

    /// Aggregate traffic counters, where metered.
    fn traffic_totals(&self) -> Option<TrafficTotals>;

    /// Whether all view histories agree, where inspectable.
    fn consistent_histories(&self) -> Option<bool>;
}

// ---------------------------------------------------------------------------
// Simulator driver
// ---------------------------------------------------------------------------

/// Runs scenarios on the deterministic simulator.
pub struct SimDriver {
    world: World,
}

impl SimDriver {
    /// Builds the world a scenario describes, hosting `kind`.
    pub fn new(kind: SystemKind, scenario: &Scenario) -> Result<SimDriver, String> {
        let world = match scenario.topology {
            Topology::Bootstrap => World::bootstrap(kind, scenario.n, scenario.seed),
            Topology::Static => World::static_cluster(kind, scenario.n, scenario.seed)?,
        };
        Ok(SimDriver { world })
    }

    /// The underlying world (post-run analysis: samples, rates, ...).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Consumes the driver, returning the world.
    pub fn into_world(self) -> World {
        self.world
    }
}

impl Driver for SimDriver {
    fn label(&self) -> String {
        format!("sim:{}", self.world.kind_label())
    }

    fn now_ms(&self) -> u64 {
        self.world.now()
    }

    fn run_until(&mut self, t_ms: u64) {
        self.world.run_until(t_ms);
    }

    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported> {
        self.world.schedule_cluster_fault(at_ms, fault);
        Ok(())
    }

    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported> {
        match w {
            ResolvedWorkload::Join(count) => self.world.join(*count).map_err(Unsupported),
            ResolvedWorkload::Leave(idxs) => {
                for &i in idxs {
                    self.world.leave(i).map_err(Unsupported)?;
                }
                Ok(())
            }
        }
    }

    fn observations(&self) -> Vec<Option<f64>> {
        self.world.observations()
    }

    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64> {
        self.world.converge(target, within_ms)
    }

    fn view_changes(&self) -> Option<u64> {
        self.world.view_changes()
    }

    fn traffic_totals(&self) -> Option<TrafficTotals> {
        Some(self.world.traffic_totals())
    }

    fn consistent_histories(&self) -> Option<bool> {
        self.world.consistent_histories()
    }
}

// ---------------------------------------------------------------------------
// Real-transport driver
// ---------------------------------------------------------------------------

/// Cap on real processes per scenario: each one is a thread cluster with
/// a listener, and a scenario asking for hundreds is a mistake, not a
/// load test.
const MAX_REAL_NODES: usize = 64;

/// Poll cadence for the wall-clock event loop.
const POLL: Duration = Duration::from_millis(20);

/// Runs scenarios on a real multi-threaded TCP cluster (loopback).
///
/// Process `i` of the scenario maps to the `i`-th runtime; the seed is
/// process 0. Whatever the scenario's topology, the cluster *bootstraps*
/// (a real deployment cannot start pre-converged) — scenarios meant for
/// both drivers begin with a `converge` expectation, which absorbs the
/// difference. Time budgets are wall-clock upper bounds; a healthy
/// cluster converges far sooner.
pub struct RealDriver {
    nodes: Vec<Option<Runtime>>,
    view_counts: Vec<u64>,
    start: Instant,
    pending: Vec<(u64, usize)>, // (due_ms, process) crash schedule
    settings: Settings,
    seed_addr: Endpoint,
}

impl RealDriver {
    /// Starts `scenario.n` real processes on loopback.
    pub fn new(scenario: &Scenario) -> Result<RealDriver, String> {
        Self::with_settings(scenario, Self::default_settings())
    }

    /// Protocol settings tuned for wall-clock scenario runs (sub-second
    /// probe cadence, seconds-scale consensus fallback).
    pub fn default_settings() -> Settings {
        Settings {
            tick_interval_ms: 20,
            fd_probe_interval_ms: 200,
            fd_probe_timeout_ms: 200,
            consensus_fallback_base_ms: 1_500,
            consensus_fallback_jitter_ms: 500,
            join_timeout_ms: 1_000,
            gossip_interval_ms: 50,
            ..Settings::default()
        }
    }

    /// Starts the cluster with explicit protocol settings.
    pub fn with_settings(scenario: &Scenario, settings: Settings) -> Result<RealDriver, String> {
        let n = scenario.n;
        if n == 0 || n > MAX_REAL_NODES {
            return Err(format!(
                "real driver supports 1..={MAX_REAL_NODES} processes, scenario wants {n}"
            ));
        }
        let seed = Runtime::start_seed(Endpoint::new("127.0.0.1", 0), settings.clone())
            .map_err(|e| format!("seed start failed: {e}"))?;
        let seed_addr = *seed.addr();
        let mut nodes = vec![Some(seed)];
        for i in 1..n {
            let joiner = Runtime::start_joiner(
                Endpoint::new("127.0.0.1", 0),
                vec![seed_addr],
                settings.clone(),
                rapid_core::Metadata::with_entry("proc", format!("{i}")),
            )
            .map_err(|e| format!("joiner {i} start failed: {e}"))?;
            nodes.push(Some(joiner));
        }
        Ok(RealDriver {
            view_counts: vec![0; nodes.len()],
            nodes,
            start: Instant::now(),
            pending: Vec::new(),
            settings,
            seed_addr,
        })
    }

    fn poll(&mut self) {
        let now = self.now_ms();
        // Fire due crashes.
        let mut due = Vec::new();
        self.pending.retain(|&(at, i)| {
            if at <= now {
                due.push(i);
                false
            } else {
                true
            }
        });
        for i in due {
            if let Some(rt) = self.nodes[i].take() {
                rt.shutdown_now();
            }
        }
        // Drain application events (view-change accounting).
        for (i, slot) in self.nodes.iter().enumerate() {
            if let Some(rt) = slot {
                while let Ok(ev) = rt.events().try_recv() {
                    if matches!(ev, AppEvent::View(_)) {
                        self.view_counts[i] += 1;
                    }
                }
            }
        }
    }

    /// Tears every process down (also runs on drop).
    pub fn shutdown(&mut self) {
        for slot in &mut self.nodes {
            if let Some(rt) = slot.take() {
                rt.shutdown_now();
            }
        }
    }
}

impl Drop for RealDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Driver for RealDriver {
    fn label(&self) -> String {
        "real:rapid".to_string()
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn run_until(&mut self, t_ms: u64) {
        while self.now_ms() < t_ms {
            self.poll();
            let remaining = t_ms.saturating_sub(self.now_ms());
            std::thread::sleep(POLL.min(Duration::from_millis(remaining.max(1))));
        }
        self.poll();
    }

    fn schedule_fault(&mut self, at_ms: u64, fault: Fault) -> Result<(), Unsupported> {
        match fault {
            Fault::Crash(i) => {
                if i >= self.nodes.len() {
                    return Err(Unsupported(format!("crash target {i} out of range")));
                }
                self.pending.push((at_ms, i));
                Ok(())
            }
            other => Err(Unsupported(format!(
                "the real driver cannot inject {other:?}; only process crashes, \
                 leaves, and joins exist outside the simulator"
            ))),
        }
    }

    fn apply_workload(&mut self, w: &ResolvedWorkload) -> Result<(), Unsupported> {
        match w {
            ResolvedWorkload::Join(count) => {
                for k in 0..*count {
                    let joiner = Runtime::start_joiner(
                        Endpoint::new("127.0.0.1", 0),
                        vec![self.seed_addr],
                        self.settings.clone(),
                        rapid_core::Metadata::with_entry("proc", format!("j{k}")),
                    )
                    .map_err(|e| Unsupported(format!("join failed: {e}")))?;
                    self.nodes.push(Some(joiner));
                    self.view_counts.push(0);
                }
                Ok(())
            }
            ResolvedWorkload::Leave(idxs) => {
                for &i in idxs {
                    if let Some(rt) = self.nodes.get_mut(i).and_then(Option::take) {
                        rt.leave();
                    }
                }
                Ok(())
            }
        }
    }

    fn observations(&self) -> Vec<Option<f64>> {
        self.nodes
            .iter()
            .flatten()
            .map(|rt| {
                (rt.status() == NodeStatus::Active).then(|| rt.view().len() as f64)
            })
            .collect()
    }

    fn converge(&mut self, target: usize, within_ms: u64) -> Option<u64> {
        let deadline = self.now_ms() + within_ms;
        loop {
            self.poll();
            if crate::world::obs_all_report(&self.observations(), target) {
                return Some(self.now_ms());
            }
            if self.now_ms() >= deadline {
                return None;
            }
            std::thread::sleep(POLL);
        }
    }

    fn view_changes(&self) -> Option<u64> {
        self.view_counts.iter().copied().max()
    }

    fn traffic_totals(&self) -> Option<TrafficTotals> {
        None
    }

    fn consistent_histories(&self) -> Option<bool> {
        None
    }
}
