//! Simulated multi-system deployments behind one interface.
//!
//! [`World`] hosts any of the compared membership systems — Rapid
//! (decentralized), Rapid-C (logically centralized), Memberlist (SWIM),
//! ZooKeeper-like, and Akka-like — on the identical simulated network, so
//! cross-system scenarios share fault injection and measurement code.
//! This lived in the `bench` crate until the scenario subsystem landed;
//! `bench` now re-exports it from here.

use central_config::world::{build_world as build_zk, ZkProc};
use gossip_member::{AkkaConfig, AkkaNode};
use rapid_core::id::Endpoint;
use rapid_core::node::{Node, NodeStatus};
use rapid_core::settings::Settings;
use rapid_core::obs::LatencyHist;
use rapid_route::sim::{KvClusterBuilder, KvSimActor};
use rapid_route::{ClientStats, KvOutcome, KvStats};
use rapid_sim::cluster::{sim_member, RapidActor, RapidClusterBuilder};
use rapid_sim::{Fault, Sample, Simulation};
use swim_member::{SwimConfig, SwimNode};

use crate::model::{KvSpec, SubmitMode, Topology};

/// The membership systems compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Decentralized Rapid (§4).
    Rapid,
    /// Logically centralized Rapid (§5), 3-node ensemble.
    RapidC,
    /// Memberlist / SWIM.
    Memberlist,
    /// ZooKeeper-like central configuration service, 3-node ensemble.
    ZooKeeper,
    /// Akka-Cluster-like epidemic membership.
    AkkaLike,
}

impl SystemKind {
    /// Short label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Rapid => "rapid",
            SystemKind::RapidC => "rapid-c",
            SystemKind::Memberlist => "memberlist",
            SystemKind::ZooKeeper => "zookeeper",
            SystemKind::AkkaLike => "akka",
        }
    }

    /// Parses a label back into a kind.
    pub fn parse(s: &str) -> Option<SystemKind> {
        Some(match s {
            "rapid" => SystemKind::Rapid,
            "rapid-c" => SystemKind::RapidC,
            "memberlist" => SystemKind::Memberlist,
            "zookeeper" => SystemKind::ZooKeeper,
            "akka" => SystemKind::AkkaLike,
            _ => return None,
        })
    }

    /// The systems compared in the bootstrap experiments (Figs. 5–7).
    pub fn bootstrap_set() -> [SystemKind; 4] {
        [
            SystemKind::ZooKeeper,
            SystemKind::Memberlist,
            SystemKind::RapidC,
            SystemKind::Rapid,
        ]
    }
}

const ENSEMBLE: usize = 3;

/// Aggregate traffic counters over all cluster processes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Total bytes received.
    pub bytes_in: u64,
    /// Total bytes sent.
    pub bytes_out: u64,
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
}

impl std::ops::Sub for TrafficTotals {
    type Output = TrafficTotals;
    fn sub(self, rhs: TrafficTotals) -> TrafficTotals {
        TrafficTotals {
            bytes_in: self.bytes_in - rhs.bytes_in,
            bytes_out: self.bytes_out - rhs.bytes_out,
            msgs_in: self.msgs_in - rhs.msgs_in,
            msgs_out: self.msgs_out - rhs.msgs_out,
        }
    }
}

/// Whether every live observation equals `target` — THE "converged"
/// predicate, shared by [`World::all_report`], the real driver's poll
/// loop, and the runner's `all_report` expectation so the definition
/// cannot drift between backends.
pub fn obs_all_report(obs: &[Option<f64>], target: usize) -> bool {
    !obs.is_empty()
        && obs
            .iter()
            .all(|o| matches!(o, Some(v) if (v - target as f64).abs() < 0.5))
}

/// One KV client operation submitted through a world/driver batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvOp {
    /// The key.
    pub key: String,
    /// `Some(value)` = put, `None` = get.
    pub put_val: Option<String>,
}

/// A Rapid deployment with the `rapid-route` KV data plane co-hosted on
/// every cluster process. When the spec's submit mode is `Client`, the
/// simulation additionally hosts `spec.clients` smart-client actors at
/// actor indices `n0..n0+clients` (joiners land after them); clients are
/// excluded from every cluster-process measurement.
pub struct KvWorld {
    /// The underlying simulation (public for post-run analysis).
    pub sim: Simulation<KvSimActor>,
    spec: KvSpec,
    /// Cluster processes at build time — the client actors' offset.
    n0: usize,
}

impl KvWorld {
    fn client_count(&self) -> usize {
        match self.spec.submit {
            SubmitMode::Client => self.spec.clients,
            SubmitMode::Coordinator => 0,
        }
    }

    /// Actor index of cluster process `p`: the client actors sit between
    /// the initial members and any later joiners, so processes joined
    /// after build time shift past them.
    fn actor_idx(&self, p: usize) -> usize {
        if p < self.n0 {
            p
        } else {
            p + self.client_count()
        }
    }
}

/// A simulated deployment of one membership system with `n` cluster
/// processes (plus a 3-node auxiliary ensemble for the centralized ones).
pub enum World {
    /// Decentralized Rapid.
    Rapid(Simulation<RapidActor>),
    /// Decentralized Rapid with the KV data plane attached.
    RapidKv(KvWorld),
    /// Rapid-C (ensemble actors `0..3`).
    RapidC(Simulation<RapidActor>),
    /// SWIM.
    Swim(Simulation<SwimNode>),
    /// ZooKeeper-like (server actors `0..3`).
    Zk(Simulation<ZkProc>),
    /// Akka-like.
    Akka(Simulation<AkkaNode>),
}

fn swim_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("node-{i}"), 7000)
}

fn akka_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("node-{i}"), 2552)
}

impl World {
    /// Builds the KV-hosting Rapid world both `*_cfg` constructors share.
    fn kv_world(
        kind: SystemKind,
        n: usize,
        seed: u64,
        settings: Option<Settings>,
        spec: KvSpec,
        topology: Topology,
    ) -> Result<World, String> {
        if kind != SystemKind::Rapid {
            return Err(format!(
                "the [kv] data plane requires system \"rapid\", not {:?}",
                kind.label()
            ));
        }
        let mut builder = KvClusterBuilder::new(n, spec.placement())
            .seed(seed)
            .op_timeout_ms(spec.op_timeout_ms());
        if let Some(s) = settings {
            builder = builder.settings(s);
        }
        if spec.submit == SubmitMode::Client {
            builder = builder.clients(spec.clients);
        }
        let sim = match topology {
            Topology::Bootstrap => builder.build_bootstrap(),
            Topology::Static => builder.build_static(),
        };
        Ok(World::RapidKv(KvWorld { sim, spec, n0: n }))
    }

    /// Builds a bootstrap deployment with protocol-settings overrides
    /// and/or the KV data plane attached. Settings overrides apply to the
    /// Rapid-protocol systems (the baselines run their own native
    /// configurations); the KV data plane requires decentralized Rapid.
    pub fn bootstrap_cfg(
        kind: SystemKind,
        n: usize,
        seed: u64,
        settings: Option<Settings>,
        kv: Option<KvSpec>,
    ) -> Result<World, String> {
        if let Some(spec) = kv {
            return Self::kv_world(kind, n, seed, settings, spec, Topology::Bootstrap);
        }
        match (kind, settings) {
            (_, None) => Ok(World::bootstrap(kind, n, seed)),
            (SystemKind::Rapid, Some(s)) => Ok(World::Rapid(
                RapidClusterBuilder::new(n).seed(seed).settings(s).build_bootstrap(),
            )),
            (SystemKind::RapidC, Some(s)) => {
                let (sim, _) = RapidClusterBuilder::new(n)
                    .seed(seed)
                    .settings(s)
                    .build_centralized(ENSEMBLE);
                Ok(World::RapidC(sim))
            }
            (other, Some(_)) => Err(format!(
                "[settings] overrides Rapid-protocol parameters; system {:?} runs its \
                 own native configuration",
                other.label()
            )),
        }
    }

    /// Builds a static deployment with protocol-settings overrides and/or
    /// the KV data plane attached (see [`World::bootstrap_cfg`] for the
    /// support matrix, [`World::static_cluster`] for topology limits).
    pub fn static_cfg(
        kind: SystemKind,
        n: usize,
        seed: u64,
        settings: Option<Settings>,
        kv: Option<KvSpec>,
    ) -> Result<World, String> {
        if let Some(spec) = kv {
            return Self::kv_world(kind, n, seed, settings, spec, Topology::Static);
        }
        match (kind, settings) {
            (_, None) => World::static_cluster(kind, n, seed),
            (SystemKind::Rapid, Some(s)) => Ok(World::Rapid(
                RapidClusterBuilder::new(n).seed(seed).settings(s).build_static(),
            )),
            // The centralized systems reject static topology regardless;
            // surface that diagnostic rather than a settings complaint.
            (SystemKind::RapidC | SystemKind::ZooKeeper, Some(_)) => {
                World::static_cluster(kind, n, seed)
            }
            (other, Some(_)) => Err(format!(
                "[settings] overrides Rapid-protocol parameters; system {:?} runs its \
                 own native configuration",
                other.label()
            )),
        }
    }

    /// Builds a bootstrap deployment: cluster process 0 (or the auxiliary
    /// ensemble) starts at t=0; the remaining processes start joining at
    /// t=10 s, as in the paper's bootstrap experiments.
    pub fn bootstrap(kind: SystemKind, n: usize, seed: u64) -> World {
        match kind {
            SystemKind::Rapid => {
                World::Rapid(RapidClusterBuilder::new(n).seed(seed).build_bootstrap())
            }
            SystemKind::RapidC => {
                let (sim, _) = RapidClusterBuilder::new(n).seed(seed).build_centralized(ENSEMBLE);
                World::RapidC(sim)
            }
            SystemKind::Memberlist => {
                let mut sim = Simulation::new(seed, 100);
                sim.add_actor(
                    swim_ep(0),
                    SwimNode::new(swim_ep(0), vec![], SwimConfig::default(), seed),
                );
                for i in 1..n {
                    sim.add_actor_at(
                        swim_ep(i),
                        SwimNode::new(
                            swim_ep(i),
                            vec![swim_ep(0)],
                            SwimConfig::default(),
                            seed + i as u64,
                        ),
                        10_000,
                    );
                }
                World::Swim(sim)
            }
            SystemKind::ZooKeeper => World::Zk(build_zk(ENSEMBLE, n, 6_000, 10_000, seed)),
            SystemKind::AkkaLike => {
                let mut sim = Simulation::new(seed, 100);
                sim.add_actor(
                    akka_ep(0),
                    AkkaNode::new(akka_ep(0), vec![], AkkaConfig::default(), seed),
                );
                for i in 1..n {
                    sim.add_actor_at(
                        akka_ep(i),
                        AkkaNode::new(
                            akka_ep(i),
                            vec![akka_ep(0)],
                            AkkaConfig::default(),
                            seed + i as u64,
                        ),
                        10_000,
                    );
                }
                World::Akka(sim)
            }
        }
    }

    /// Builds a steady-state deployment: all `n` processes start as
    /// members of one static configuration (the paper's failure
    /// experiments start from here). Supported by the decentralized
    /// systems (Rapid, Memberlist, Akka-like); the centralized ones
    /// cannot teleport an ensemble plus registered clients into
    /// existence and reject with a diagnostic.
    pub fn static_cluster(kind: SystemKind, n: usize, seed: u64) -> Result<World, String> {
        match kind {
            SystemKind::Rapid => {
                Ok(World::Rapid(RapidClusterBuilder::new(n).seed(seed).build_static()))
            }
            SystemKind::Memberlist => {
                let all: Vec<Endpoint> = (0..n).map(swim_ep).collect();
                let mut sim = Simulation::new(seed, 100);
                for (i, &ep) in all.iter().enumerate() {
                    sim.add_actor(
                        ep,
                        SwimNode::new_static(
                            ep,
                            all.iter().copied(),
                            SwimConfig::default(),
                            seed + i as u64,
                        ),
                    );
                }
                Ok(World::Swim(sim))
            }
            SystemKind::AkkaLike => {
                let all: Vec<Endpoint> = (0..n).map(akka_ep).collect();
                let mut sim = Simulation::new(seed, 100);
                for (i, &ep) in all.iter().enumerate() {
                    sim.add_actor(
                        ep,
                        AkkaNode::new_static(
                            ep,
                            all.iter().copied(),
                            AkkaConfig::default(),
                            seed + i as u64,
                        ),
                    );
                }
                Ok(World::Akka(sim))
            }
            other @ (SystemKind::ZooKeeper | SystemKind::RapidC) => Err(format!(
                "scenario field `topology = \"static\"` is not supported for system {:?} \
                 ({}): its auxiliary ensemble must elect a leader and register every \
                 client session, which cannot be teleported into a steady state — use \
                 `topology = \"bootstrap\"` (the real driver always bootstraps anyway)",
                other.label(),
                other.label()
            )),
        }
    }

    /// Index offset of cluster process 0 in actor space (the auxiliary
    /// ensembles occupy the first indices in centralized systems).
    pub fn cluster_offset(&self) -> usize {
        match self {
            World::Rapid(_) | World::RapidKv(_) | World::Swim(_) | World::Akka(_) => 0,
            World::RapidC(_) | World::Zk(_) => ENSEMBLE,
        }
    }

    /// Number of actors (including auxiliary ensembles).
    pub fn actors(&self) -> usize {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.len(),
            World::RapidKv(w) => w.sim.len(),
            World::Swim(s) => s.len(),
            World::Zk(s) => s.len(),
            World::Akka(s) => s.len(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.now(),
            World::RapidKv(w) => w.sim.now(),
            World::Swim(s) => s.now(),
            World::Zk(s) => s.now(),
            World::Akka(s) => s.now(),
        }
    }

    /// Runs until virtual time `until_ms`.
    pub fn run_until(&mut self, until_ms: u64) {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.run_until(until_ms),
            World::RapidKv(w) => w.sim.run_until(until_ms),
            World::Swim(s) => s.run_until(until_ms),
            World::Zk(s) => s.run_until(until_ms),
            World::Akka(s) => s.run_until(until_ms),
        }
    }

    /// Schedules a fault on a *cluster process index* (auxiliary ensembles
    /// are shielded, as in the paper, which injects faults only on cluster
    /// processes — and client actors likewise cannot be targeted).
    pub fn schedule_cluster_fault(&mut self, at: u64, fault: Fault) {
        if let World::RapidKv(w) = self {
            // Client actors sit between the initial members and later
            // joiners, so post-build process indices shift past them.
            let (n0, c) = (w.n0, w.client_count());
            let m = |i: usize| if i < n0 { i } else { i + c };
            let shifted = match fault {
                Fault::Crash(i) => Fault::Crash(m(i)),
                Fault::IngressDrop(i, p) => Fault::IngressDrop(m(i), p),
                Fault::EgressDrop(i, p) => Fault::EgressDrop(m(i), p),
                Fault::BlackholePair(a, b) => Fault::BlackholePair(m(a), m(b)),
                Fault::ClearBlackholePair(a, b) => Fault::ClearBlackholePair(m(a), m(b)),
                Fault::Partition(g) => Fault::Partition(g.into_iter().map(m).collect()),
                Fault::LinkLoss(a, b, p) => Fault::LinkLoss(m(a), m(b), p),
                Fault::SlowNode(i, f) => Fault::SlowNode(m(i), f),
                other @ (Fault::Duplicate(_) | Fault::Reorder(_, _) | Fault::Latency(_)) => other,
            };
            w.sim.schedule_fault(at, shifted);
            return;
        }
        let off = self.cluster_offset();
        let shifted = match fault {
            Fault::Crash(i) => Fault::Crash(i + off),
            Fault::IngressDrop(i, p) => Fault::IngressDrop(i + off, p),
            Fault::EgressDrop(i, p) => Fault::EgressDrop(i + off, p),
            Fault::BlackholePair(a, b) => Fault::BlackholePair(a + off, b + off),
            Fault::ClearBlackholePair(a, b) => Fault::ClearBlackholePair(a + off, b + off),
            Fault::Partition(g) => Fault::Partition(g.into_iter().map(|i| i + off).collect()),
            Fault::LinkLoss(a, b, p) => Fault::LinkLoss(a + off, b + off, p),
            Fault::SlowNode(i, f) => Fault::SlowNode(i + off, f),
            Fault::Duplicate(p) => Fault::Duplicate(p),
            Fault::Reorder(p, extra) => Fault::Reorder(p, extra),
            Fault::Latency(d) => Fault::Latency(d),
        };
        match self {
            World::Rapid(s) | World::RapidC(s) => s.schedule_fault(at, shifted),
            World::RapidKv(w) => w.sim.schedule_fault(at, shifted),
            World::Swim(s) => s.schedule_fault(at, shifted),
            World::Zk(s) => s.schedule_fault(at, shifted),
            World::Akka(s) => s.schedule_fault(at, shifted),
        }
    }

    /// The current cluster-size observation of each live cluster process
    /// (`None` while a process has no view).
    pub fn observations(&self) -> Vec<Option<f64>> {
        fn collect<A: rapid_sim::Actor>(s: &Simulation<A>, off: usize) -> Vec<Option<f64>> {
            (off..s.len())
                .filter(|&i| !s.net.is_crashed(i))
                .map(|i| s.actor(i).sample())
                .collect()
        }
        let off = self.cluster_offset();
        match self {
            World::Rapid(s) | World::RapidC(s) => collect(s, off),
            // Client actors are not cluster members: they never report a
            // size and must not hold up convergence predicates.
            World::RapidKv(w) => (0..w.sim.len())
                .filter(|&i| !w.sim.net.is_crashed(i) && !w.sim.actor(i).is_client())
                .map(|i| rapid_sim::Actor::sample(w.sim.actor(i)))
                .collect(),
            World::Swim(s) => collect(s, off),
            World::Zk(s) => collect(s, off),
            World::Akka(s) => collect(s, off),
        }
    }

    /// Whether every live cluster process currently reports exactly
    /// `target` members.
    pub fn all_report(&self, target: usize) -> bool {
        obs_all_report(&self.observations(), target)
    }

    /// Runs until every live cluster process reports `target`, checking
    /// once per virtual second. Returns the convergence time.
    pub fn converge(&mut self, target: usize, max_ms: u64) -> Option<u64> {
        let deadline = self.now() + max_ms;
        while self.now() < deadline {
            let next = (self.now() + 1_000).min(deadline);
            self.run_until(next);
            if self.all_report(target) {
                return Some(self.now());
            }
        }
        None
    }

    /// All per-second cluster-size samples collected so far (actor indices
    /// are raw; subtract [`World::cluster_offset`] for process numbering).
    pub fn samples(&self) -> &[Sample] {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.samples(),
            World::RapidKv(w) => w.sim.samples(),
            World::Swim(s) => s.samples(),
            World::Zk(s) => s.samples(),
            World::Akka(s) => s.samples(),
        }
    }

    /// Per-second `(bytes_in, bytes_out)` rates of every cluster process,
    /// skipping each process' first `skip_secs` seconds (e.g. to exclude
    /// bootstrap traffic from a steady-state measurement).
    pub fn per_second_rates(&self, skip_secs: usize) -> Vec<(u64, u64)> {
        fn collect<A: rapid_sim::Actor>(
            s: &Simulation<A>,
            off: usize,
            skip: usize,
        ) -> Vec<(u64, u64)> {
            let mut v = Vec::new();
            for i in off..s.len() {
                v.extend(s.traffic(i).per_second.iter().skip(skip).copied());
            }
            v
        }
        let off = self.cluster_offset();
        match self {
            World::Rapid(s) | World::RapidC(s) => collect(s, off, skip_secs),
            World::RapidKv(w) => {
                let mut v = Vec::new();
                for i in 0..w.sim.len() {
                    if w.sim.actor(i).is_client() {
                        continue;
                    }
                    v.extend(w.sim.traffic(i).per_second.iter().skip(skip_secs).copied());
                }
                v
            }
            World::Swim(s) => collect(s, off, skip_secs),
            World::Zk(s) => collect(s, off, skip_secs),
            World::Akka(s) => collect(s, off, skip_secs),
        }
    }

    /// Per-process convergence times: the first instant each cluster
    /// process reported `target` (relative to experiment start).
    pub fn per_process_convergence(&self, target: usize) -> Vec<f64> {
        let off = self.cluster_offset();
        let mut first: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for s in self.samples() {
            if s.actor >= off && (s.value - target as f64).abs() < 0.5 {
                first.entry(s.actor).or_insert(s.t_ms);
            }
        }
        first.values().map(|&t| t as f64 / 1_000.0).collect()
    }

    /// Distinct cluster sizes reported across all samples (Table 1).
    pub fn unique_sizes(&self) -> usize {
        rapid_sim::series::unique_values(self.samples())
    }

    /// Aggregate traffic counters over all cluster processes (phase
    /// deltas come from subtracting two snapshots).
    pub fn traffic_totals(&self) -> TrafficTotals {
        fn collect<A: rapid_sim::Actor>(s: &Simulation<A>, off: usize) -> TrafficTotals {
            let mut t = TrafficTotals::default();
            for i in off..s.len() {
                let tr = s.traffic(i);
                t.bytes_in += tr.bytes_in;
                t.bytes_out += tr.bytes_out;
                t.msgs_in += tr.msgs_in;
                t.msgs_out += tr.msgs_out;
            }
            t
        }
        let off = self.cluster_offset();
        match self {
            World::Rapid(s) | World::RapidC(s) => collect(s, off),
            // Cluster traffic only: what the clients themselves send is
            // reported through the client plane, not the node totals.
            World::RapidKv(w) => {
                let mut t = TrafficTotals::default();
                for i in 0..w.sim.len() {
                    if w.sim.actor(i).is_client() {
                        continue;
                    }
                    let tr = w.sim.traffic(i);
                    t.bytes_in += tr.bytes_in;
                    t.bytes_out += tr.bytes_out;
                    t.msgs_in += tr.msgs_in;
                    t.msgs_out += tr.msgs_out;
                }
                t
            }
            World::Swim(s) => collect(s, off),
            World::Zk(s) => collect(s, off),
            World::Akka(s) => collect(s, off),
        }
    }

    /// The maximum number of view changes any live Rapid node has
    /// installed (`None` for systems without strongly consistent views).
    pub fn view_changes(&self) -> Option<u64> {
        match self {
            World::Rapid(s) => {
                let mut max = 0;
                for i in 0..s.len() {
                    if s.net.is_crashed(i) {
                        continue;
                    }
                    if let Some(n) = s.actor(i).as_node() {
                        max = max.max(n.metrics().view_changes);
                    }
                }
                Some(max)
            }
            World::RapidKv(w) => {
                let mut max = 0;
                for i in 0..w.sim.len() {
                    if w.sim.net.is_crashed(i) || w.sim.actor(i).is_client() {
                        continue;
                    }
                    max = max.max(w.sim.actor(i).as_node().metrics().view_changes);
                }
                Some(max)
            }
            _ => None,
        }
    }

    /// Whether every active Rapid node installed the same view-change
    /// sequence, prefix-wise (`None` for systems without view histories).
    pub fn consistent_histories(&self) -> Option<bool> {
        match self {
            World::Rapid(s) => {
                let mut histories = Vec::new();
                for i in 0..s.len() {
                    if s.net.is_crashed(i) {
                        continue;
                    }
                    if let Some(node) = s.actor(i).as_node() {
                        if node.status() == NodeStatus::Active {
                            histories.push(node.view_history().to_vec());
                        }
                    }
                }
                // Strong consistency means every node's history is a
                // contiguous window of one global configuration chain: a
                // laggard's window ends early, a late joiner's starts
                // late. Check every history against the longest one.
                let reference = histories
                    .iter()
                    .max_by_key(|h| h.len())
                    .cloned()
                    .unwrap_or_default();
                Some(histories.iter().all(|h| {
                    h.len() <= reference.len()
                        && (h.is_empty()
                            || reference.windows(h.len()).any(|w| w == &h[..]))
                }))
            }
            World::RapidKv(w) => {
                let mut histories = Vec::new();
                for i in 0..w.sim.len() {
                    if w.sim.net.is_crashed(i) || w.sim.actor(i).is_client() {
                        continue;
                    }
                    let node = w.sim.actor(i).as_node();
                    if node.status() == NodeStatus::Active {
                        histories.push(node.view_history().to_vec());
                    }
                }
                let reference = histories
                    .iter()
                    .max_by_key(|h| h.len())
                    .cloned()
                    .unwrap_or_default();
                Some(histories.iter().all(|h| {
                    h.len() <= reference.len()
                        && (h.is_empty()
                            || reference.windows(h.len()).any(|w| w == &h[..]))
                }))
            }
            _ => None,
        }
    }

    /// Voluntary departure of cluster process `idx` (decentralized Rapid
    /// only).
    pub fn leave(&mut self, idx: usize) -> Result<(), String> {
        match self {
            World::Rapid(s) => {
                let now = s.now();
                s.with_actor(idx, |a, out| a.leave(now, out));
                // The departed process terminates: its announcements are
                // already in flight, and a terminated process must not
                // keep ticking or block convergence checks.
                s.net.crash(idx);
                Ok(())
            }
            World::RapidKv(w) => {
                let idx = w.actor_idx(idx);
                let now = w.sim.now();
                w.sim.with_actor(idx, |a, out| a.leave(now, out));
                w.sim.net.crash(idx);
                Ok(())
            }
            other => Err(format!(
                "leave workload is not implemented for {}",
                other.kind_label()
            )),
        }
    }

    /// Starts `count` fresh processes that join through cluster process 0
    /// (decentralized Rapid only). `settings` must match what the running
    /// cluster uses — a scenario's `[settings]` overrides apply to
    /// joiners too, not just the initial membership.
    pub fn join_cfg(&mut self, count: usize, settings: Option<Settings>) -> Result<(), String> {
        let settings = settings.unwrap_or_default();
        match self {
            World::Rapid(s) => {
                let seed_addr = sim_member(0).addr;
                let base = s.len();
                for k in 0..count {
                    let m = sim_member(base + k);
                    let node = Node::new_joiner(
                        m.clone(),
                        settings.clone(),
                        vec![seed_addr],
                    );
                    s.add_actor(m.addr, RapidActor::node(node));
                }
                Ok(())
            }
            World::RapidKv(w) => {
                let seed_addr = sim_member(0).addr;
                let base = w.sim.len();
                for k in 0..count {
                    let m = sim_member(base + k);
                    let node = Node::new_joiner(m.clone(), settings.clone(), vec![seed_addr]);
                    // Fresh caches are fine: placement is a pure function
                    // of the view, caches only memoize it.
                    let kv = rapid_route::KvNode::new(
                        m.clone(),
                        w.spec.placement(),
                        w.spec.op_timeout_ms(),
                        None,
                    )
                    .expect_initial_handoffs();
                    w.sim.add_actor(m.addr, KvSimActor::new(node, kv));
                }
                Ok(())
            }
            other => Err(format!(
                "join workload is not implemented for {}",
                other.kind_label()
            )),
        }
    }

    /// Starts `count` fresh processes with default protocol settings
    /// (see [`World::join_cfg`]).
    pub fn join(&mut self, count: usize) -> Result<(), String> {
        self.join_cfg(count, None)
    }

    /// Runs a batch of KV client operations: all ops are submitted at
    /// once, the simulation advances one op-window, and unresolved ops
    /// score as failed. Requires the KV-hosting world.
    ///
    /// In the default `submit = "client"` mode the batch goes through a
    /// smart-client actor (`via` only picks which client, round-robin);
    /// in `"coordinator"` mode it goes through member node `via`
    /// (`None` = first live process), which forwards to leaders.
    pub fn kv_batch(&mut self, via: Option<usize>, ops: &[KvOp]) -> Result<Vec<KvOutcome>, String> {
        let World::RapidKv(w) = self else {
            return Err(format!(
                "kv workloads need the [kv] data plane; this world hosts {} without it",
                self.kind_label()
            ));
        };
        let now = w.sim.now();
        let client_ops: Vec<rapid_route::ClientOp<'_>> = ops
            .iter()
            .map(|op| match &op.put_val {
                Some(v) => rapid_route::ClientOp::Put { key: &op.key, val: v },
                None => rapid_route::ClientOp::Get { key: &op.key },
            })
            .collect();
        let submitter = match w.spec.submit {
            // Smart-client path: the client routes each op straight to
            // its partition leader from the cached placement.
            SubmitMode::Client => w.n0 + via.unwrap_or(0) % w.client_count(),
            // Legacy path: one member node coordinates, forwarding
            // remote ops (one extra hop each).
            SubmitMode::Coordinator => {
                let n = w.sim.len();
                match via {
                    Some(i) if w.actor_idx(i) < n && !w.sim.net.is_crashed(w.actor_idx(i)) => {
                        w.actor_idx(i)
                    }
                    Some(i) => {
                        return Err(format!("kv coordinator {i} is out of range or crashed"))
                    }
                    None => (0..n)
                        .find(|&i| !w.sim.net.is_crashed(i) && !w.sim.actor(i).is_client())
                        .ok_or("no live process to coordinate kv ops")?,
                }
            }
        };
        // One pipelined submission: the submitter's outbox coalesces ops
        // sharing a destination into single wire frames.
        let mode = w.spec.submit;
        let reqs: Vec<u64> = w.sim.with_actor(submitter, |a, out| match mode {
            SubmitMode::Client => a.client_submit_ops(&client_ops, now, out),
            SubmitMode::Coordinator => a.begin_ops(&client_ops, now, out),
        });
        w.sim.run_until(now + w.spec.op_window_ms);
        let completed = std::mem::take(&mut w.sim.actor_mut(submitter).completed);
        Ok(reqs
            .iter()
            .map(|req| {
                completed
                    .iter()
                    .find(|(r, _)| r == req)
                    .map(|(_, o)| o.clone())
                    .unwrap_or(KvOutcome::Failed)
            })
            .collect())
    }

    /// Aggregate smart-client counters across all client actors (`None`
    /// when this world hosts no client plane).
    pub fn kv_client_stats(&self) -> Option<ClientStats> {
        let World::RapidKv(w) = self else { return None };
        if w.client_count() == 0 {
            return None;
        }
        let mut stats = ClientStats::default();
        for i in w.n0..w.n0 + w.client_count() {
            if let Some(cs) = w.sim.actor(i).client_stats() {
                stats.absorb(cs);
            }
        }
        Some(stats)
    }

    /// Merged client-observed op-latency histogram across all client
    /// actors (`None` when this world hosts no client plane).
    pub fn kv_client_hist(&self) -> Option<LatencyHist> {
        let World::RapidKv(w) = self else { return None };
        if w.client_count() == 0 {
            return None;
        }
        let mut hist = LatencyHist::new();
        for i in w.n0..w.n0 + w.client_count() {
            if let Some(c) = w.sim.actor(i).client() {
                hist.merge(c.op_hist());
            }
        }
        Some(hist)
    }

    /// Aggregate data-plane counters over all processes (including
    /// crashed ones, whose handoffs already happened), where hosted.
    pub fn kv_stats(&self) -> Option<KvStats> {
        let World::RapidKv(w) = self else { return None };
        let mut stats = KvStats::default();
        for i in 0..w.sim.len() {
            if w.sim.actor(i).is_client() {
                continue;
            }
            stats.absorb(w.sim.actor(i).kv_stats());
        }
        Some(stats)
    }

    /// Per-live-process `(partition, digest, settled)` snapshots, the
    /// raw material of the `kv_converged` expectation. `None` when this
    /// world hosts no KV data plane.
    pub fn kv_digest_snapshots(
        &self,
    ) -> Option<Vec<Vec<(u32, rapid_route::PartitionDigest, bool)>>> {
        let World::RapidKv(w) = self else { return None };
        Some(
            (0..w.sim.len())
                .filter(|&i| !w.sim.net.is_crashed(i) && !w.sim.actor(i).is_client())
                .map(|i| w.sim.actor(i).kv().digest_snapshot())
                .collect(),
        )
    }

    /// Per-live-process driver time of the *last* view install, in actor
    /// order (`None` for systems without strongly consistent views). The
    /// runner subtracts the fault-injection instant from these to get the
    /// paper's convergence-latency samples.
    pub fn view_install_times(&self) -> Option<Vec<u64>> {
        match self {
            World::Rapid(s) | World::RapidC(s) => Some(
                (0..s.len())
                    .filter(|&i| !s.net.is_crashed(i))
                    .filter_map(|i| s.actor(i).log.views.last().map(|(t, _)| *t))
                    .collect(),
            ),
            World::RapidKv(w) => Some(
                (0..w.sim.len())
                    .filter(|&i| !w.sim.net.is_crashed(i) && !w.sim.actor(i).is_client())
                    .filter_map(|i| w.sim.actor(i).log.views.last().map(|(t, _)| *t))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The merged flight-recorder trace of every process, as JSONL lines
    /// in global causal order (empty for worlds without trace rings).
    /// Deterministic: a pure function of per-node ring contents, which
    /// the sharded engine keeps bit-identical across thread counts.
    pub fn flight_dump(&self) -> Vec<String> {
        match self {
            World::Rapid(s) | World::RapidC(s) => rapid_sim::cluster::trace_lines(s),
            World::RapidKv(w) => rapid_route::sim::trace_lines(&w.sim),
            _ => Vec::new(),
        }
    }

    /// The merged metrics timeline of every process, as JSONL lines in
    /// `(t, node)` order (empty for worlds without samplers, or when
    /// `obs_sample_ms` is 0). Deterministic: sweeps are engine events,
    /// bit-identical across thread counts.
    pub fn metrics_dump(&self) -> Vec<String> {
        match self {
            World::Rapid(s) | World::RapidC(s) => rapid_sim::cluster::timeline_lines(s),
            World::RapidKv(w) => rapid_route::sim::timeline_lines(&w.sim),
            _ => Vec::new(),
        }
    }

    /// Every held timeline point across the cluster as
    /// `(t_ms, actor_index, point)` in `(t, actor)` order.
    pub fn timeline_points(&self) -> Vec<(u64, usize, rapid_core::obs::TimelinePoint)> {
        match self {
            World::Rapid(s) | World::RapidC(s) => rapid_sim::cluster::timeline_points(s),
            World::RapidKv(w) => rapid_route::sim::timeline_points(&w.sim),
            _ => Vec::new(),
        }
    }

    /// Total events lost to bounded observability rings wrapping (trace
    /// rings + timelines), across all processes.
    pub fn obs_dropped(&self) -> u64 {
        match self {
            World::Rapid(s) | World::RapidC(s) => {
                rapid_sim::cluster::trace_dropped(s) + rapid_sim::cluster::timeline_dropped(s)
            }
            World::RapidKv(w) => {
                rapid_route::sim::trace_dropped(&w.sim)
                    + rapid_route::sim::timeline_dropped(&w.sim)
            }
            _ => 0,
        }
    }

    /// The system kind hosted by this world.
    pub fn kind_label(&self) -> &'static str {
        match self {
            World::Rapid(_) => "rapid",
            World::RapidKv(_) => "rapid",
            World::RapidC(_) => "rapid-c",
            World::Swim(_) => "memberlist",
            World::Zk(_) => "zookeeper",
            World::Akka(_) => "akka",
        }
    }
}

/// Aggregates a sample timeseries into per-second rows of
/// `(t_s, min, median, max, distinct)` over cluster processes.
pub fn aggregate_timeseries(samples: &[Sample], offset: usize) -> Vec<(u64, f64, f64, f64, usize)> {
    use std::collections::BTreeMap;
    let mut by_t: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for s in samples {
        if s.actor >= offset {
            by_t.entry(s.t_ms / 1_000).or_default().push(s.value);
        }
    }
    by_t.into_iter()
        .map(|(t, mut vs)| {
            vs.sort_by(|a, b| a.total_cmp(b));
            let distinct = {
                let mut d = vs.iter().map(|v| v.round() as i64).collect::<Vec<_>>();
                d.dedup();
                d.len()
            };
            (t, vs[0], vs[vs.len() / 2], vs[vs.len() - 1], distinct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_bootstrap_small() {
        for kind in [
            SystemKind::Rapid,
            SystemKind::Memberlist,
            SystemKind::AkkaLike,
        ] {
            let mut w = World::bootstrap(kind, 15, 3);
            let t = w.converge(15, 180_000);
            assert!(t.is_some(), "{} must converge", kind.label());
            let tt = w.traffic_totals();
            assert!(tt.msgs_out > 0 && tt.bytes_out > 0);
        }
    }

    #[test]
    fn centralized_worlds_bootstrap_small() {
        for kind in [SystemKind::ZooKeeper, SystemKind::RapidC] {
            let mut w = World::bootstrap(kind, 10, 4);
            let t = w.converge(10, 240_000);
            assert!(t.is_some(), "{} must converge", kind.label());
            assert_eq!(w.cluster_offset(), 3);
        }
    }

    #[test]
    fn cluster_fault_indices_are_offset() {
        let mut w = World::bootstrap(SystemKind::ZooKeeper, 8, 5);
        w.converge(8, 240_000).expect("bootstrap");
        // Crash cluster process 0 (actor 3).
        w.schedule_cluster_fault(w.now() + 100, Fault::Crash(0));
        let t = w.converge(7, 120_000);
        assert!(t.is_some(), "crashed client must be expired");
    }

    #[test]
    fn static_rapid_world_and_consistency_probe() {
        let mut w = World::static_cluster(SystemKind::Rapid, 20, 6).unwrap();
        w.run_until(5_000);
        assert!(w.all_report(20));
        assert_eq!(w.view_changes(), Some(0));
        assert_eq!(w.consistent_histories(), Some(true));
    }

    #[test]
    fn static_baseline_worlds_start_converged_and_detect_crashes() {
        for kind in [SystemKind::Memberlist, SystemKind::AkkaLike] {
            let mut w = World::static_cluster(kind, 15, 9).unwrap();
            w.run_until(3_000);
            assert!(
                w.all_report(15),
                "{} static cluster must report full size immediately",
                kind.label()
            );
            w.schedule_cluster_fault(w.now() + 100, Fault::Crash(7));
            let t = w.converge(14, 120_000);
            assert!(t.is_some(), "{} must expire the crashed member", kind.label());
        }
    }

    #[test]
    fn centralized_static_topology_is_rejected_with_a_diagnostic() {
        for kind in [SystemKind::ZooKeeper, SystemKind::RapidC] {
            let err = match World::static_cluster(kind, 10, 1) {
                Err(e) => e,
                Ok(_) => panic!("{} static topology must be rejected", kind.label()),
            };
            assert!(
                err.contains("topology = \"static\"") && err.contains(kind.label()),
                "diagnostic must name the field and the system, got: {err}"
            );
            assert!(err.contains("bootstrap"), "diagnostic must point at the fix: {err}");
        }
    }

    #[test]
    fn leave_and_join_workloads_on_rapid() {
        let mut w = World::static_cluster(SystemKind::Rapid, 12, 7).unwrap();
        w.run_until(5_000);
        w.leave(5).unwrap();
        assert!(w.converge(11, 120_000).is_some(), "leaver must be removed");
        w.join(2).unwrap();
        assert!(w.converge(13, 240_000).is_some(), "joiners must be admitted");
        assert_eq!(w.consistent_histories(), Some(true));
    }

    #[test]
    fn aggregate_timeseries_shapes() {
        let samples = vec![
            Sample { t_ms: 1_000, actor: 0, value: 3.0 },
            Sample { t_ms: 1_200, actor: 1, value: 5.0 },
            Sample { t_ms: 2_000, actor: 0, value: 5.0 },
        ];
        let rows = aggregate_timeseries(&samples, 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, 3.0, 5.0, 5.0, 2));
    }
}
