//! Converts parsed TOML into a [`Scenario`] (schema in
//! `docs/SCENARIOS.md`).

use rapid_sim::LatencyDist;

use crate::model::{
    Expect, FaultSpec, FullOverrides, Group, Inject, KeyDist, KvSpec, Phase, Repeat, Scenario,
    SettingsPatch, SizeExpr, SubmitMode, Target, Topology, Workload, WorkloadAction,
};
use crate::toml::Value;

fn req<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing {key:?}"))
}

/// Required non-negative integer — negative values are an error, never a
/// silent unsigned wrap.
fn req_uint(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    let i = req(v, key, ctx)?
        .as_int()
        .ok_or_else(|| format!("{ctx}: {key:?} must be an integer"))?;
    u64::try_from(i).map_err(|_| format!("{ctx}: {key:?} must be non-negative, got {i}"))
}

fn req_usize(v: &Value, key: &str, ctx: &str) -> Result<usize, String> {
    Ok(req_uint(v, key, ctx)? as usize)
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    req(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: {key:?} must be a number"))
}

fn req_str<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str, String> {
    req(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: {key:?} must be a string"))
}

fn opt_u64(v: &Value, key: &str, ctx: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => {
            let i = x
                .as_int()
                .ok_or_else(|| format!("{ctx}: {key:?} must be an integer"))?;
            u64::try_from(i)
                .map(Some)
                .map_err(|_| format!("{ctx}: {key:?} must be non-negative, got {i}"))
        }
    }
}

/// Loads a scenario from a parsed TOML root table.
pub fn scenario_from_value(root: &Value) -> Result<Scenario, String> {
    let ctx = "scenario";
    let name = req_str(root, "name", ctx)?.to_string();
    let n = req_usize(root, "n", ctx)?;
    let seed = match root.get("seed") {
        None => 1,
        Some(v) => u64::try_from(v.as_int().ok_or("scenario: seed must be an integer")?)
            .map_err(|_| "scenario: seed must be non-negative".to_string())?,
    };
    let topology = match root.get("topology").and_then(|v| v.as_str()).unwrap_or("bootstrap") {
        "bootstrap" => Topology::Bootstrap,
        "static" => Topology::Static,
        other => return Err(format!("{ctx}: unknown topology {other:?}")),
    };

    let mut groups = Vec::new();
    if let Some(gtab) = root.get("groups") {
        let table = gtab
            .as_table()
            .ok_or_else(|| format!("{ctx}: groups must be a table"))?;
        for (gname, gval) in table {
            groups.push((gname.clone(), group_from_value(gval, gname)?));
        }
    }

    let mut phases = Vec::new();
    if let Some(parr) = root.get("phase") {
        let arr = parr
            .as_array()
            .ok_or_else(|| format!("{ctx}: phase must be an array of tables"))?;
        for (i, pval) in arr.iter().enumerate() {
            phases.push(phase_from_value(pval, i)?);
        }
    }
    if phases.is_empty() {
        return Err(format!("{ctx}: at least one [[phase]] is required"));
    }

    let full = match root.get("full") {
        None => FullOverrides::default(),
        Some(f) => FullOverrides {
            n: match f.get("n") {
                None => None,
                Some(_) => Some(req_usize(f, "n", "[full]")?),
            },
        },
    };

    let settings = match root.get("settings") {
        None => SettingsPatch::default(),
        Some(s) => settings_from_value(s)?,
    };

    let kv = match root.get("kv") {
        None => None,
        Some(k) => Some(kv_from_value(k)?),
    };

    Ok(Scenario {
        name,
        n,
        seed,
        topology,
        groups,
        phases,
        full,
        settings,
        kv,
    })
}

fn settings_from_value(v: &Value) -> Result<SettingsPatch, String> {
    let ctx = "[settings]";
    let table = v
        .as_table()
        .ok_or_else(|| format!("{ctx}: must be a table"))?;
    let mut patch = SettingsPatch::default();
    // Every key is matched explicitly so a typo'd override fails the
    // load instead of silently running with protocol defaults.
    for key in table.keys() {
        match key.as_str() {
            "k" => patch.k = Some(req_usize(v, "k", ctx)?),
            "h" => patch.h = Some(req_usize(v, "h", ctx)?),
            "l" => patch.l = Some(req_usize(v, "l", ctx)?),
            "tick_interval_ms" => patch.tick_interval_ms = Some(req_uint(v, key, ctx)?),
            "fd_probe_interval_ms" => patch.fd_probe_interval_ms = Some(req_uint(v, key, ctx)?),
            "fd_probe_timeout_ms" => patch.fd_probe_timeout_ms = Some(req_uint(v, key, ctx)?),
            "fd_window" => patch.fd_window = Some(req_usize(v, key, ctx)?),
            "fd_fail_fraction" => patch.fd_fail_fraction = Some(req_f64(v, key, ctx)?),
            "reinforce_timeout_ms" => patch.reinforce_timeout_ms = Some(req_uint(v, key, ctx)?),
            "consensus_fallback_base_ms" => {
                patch.consensus_fallback_base_ms = Some(req_uint(v, key, ctx)?)
            }
            "consensus_fallback_jitter_ms" => {
                patch.consensus_fallback_jitter_ms = Some(req_uint(v, key, ctx)?)
            }
            "classic_round_timeout_ms" => {
                patch.classic_round_timeout_ms = Some(req_uint(v, key, ctx)?)
            }
            "gossip_fanout" => patch.gossip_fanout = Some(req_usize(v, key, ctx)?),
            "gossip_interval_ms" => patch.gossip_interval_ms = Some(req_uint(v, key, ctx)?),
            "join_timeout_ms" => patch.join_timeout_ms = Some(req_uint(v, key, ctx)?),
            "bootstrap_batch" => patch.bootstrap_batch = Some(req_usize(v, key, ctx)?),
            "use_gossip_broadcast" => {
                patch.use_gossip_broadcast = Some(
                    v.get(key)
                        .and_then(Value::as_bool)
                        .ok_or_else(|| format!("{ctx}: {key:?} must be a boolean"))?,
                )
            }
            "threads" => patch.threads = Some(req_usize(v, key, ctx)?),
            "obs_ring" => patch.obs_ring = Some(req_usize(v, key, ctx)?),
            "obs_sample_ms" => patch.obs_sample_ms = Some(req_uint(v, key, ctx)?),
            "kv_shards" => patch.kv_shards = Some(req_usize(v, key, ctx)?),
            "client_window" => patch.client_window = Some(req_usize(v, key, ctx)?),
            "kv_inbox" => patch.kv_inbox = Some(req_usize(v, key, ctx)?),
            "kv_shed_p99_ms" => patch.kv_shed_p99_ms = Some(req_uint(v, key, ctx)?),
            "peer_quota_frames" => patch.peer_quota_frames = Some(req_uint(v, key, ctx)?),
            "peer_quota_bytes" => patch.peer_quota_bytes = Some(req_uint(v, key, ctx)?),
            "peer_quota_interval_ms" => {
                patch.peer_quota_interval_ms = Some(req_uint(v, key, ctx)?)
            }
            "batch_wire" => {
                patch.batch_wire = Some(
                    v.get(key)
                        .and_then(Value::as_bool)
                        .ok_or_else(|| format!("{ctx}: {key:?} must be a boolean"))?,
                )
            }
            other => return Err(format!("{ctx}: unknown settings key {other:?}")),
        }
    }
    // Validate against the paper defaults now, so an invalid combination
    // (H > K, a zero fan-out, an out-of-range fraction, ...) fails at
    // load time with `[settings]` context instead of surfacing later at
    // driver construction. Both drivers' baselines share every
    // validation-relevant default, so this check is representative.
    patch
        .apply(rapid_core::settings::Settings::default())
        .map(|_| ())?;
    Ok(patch)
}

fn kv_from_value(v: &Value) -> Result<KvSpec, String> {
    let ctx = "[kv]";
    let table = v
        .as_table()
        .ok_or_else(|| format!("{ctx}: must be a table"))?;
    let mut spec = KvSpec::default();
    for key in table.keys() {
        match key.as_str() {
            "partitions" => {
                spec.partitions = u32::try_from(req_uint(v, key, ctx)?)
                    .map_err(|_| format!("{ctx}: partitions too large"))?
            }
            "replication" => spec.replication = req_usize(v, key, ctx)?,
            "op_window_ms" => spec.op_window_ms = req_uint(v, key, ctx)?,
            "repair_interval_ms" => spec.repair_interval_ms = req_uint(v, key, ctx)?,
            "value_size" => spec.value_size = req_usize(v, key, ctx)?,
            "submit" => {
                spec.submit = match req_str(v, key, ctx)? {
                    "client" => SubmitMode::Client,
                    "coordinator" => SubmitMode::Coordinator,
                    other => {
                        return Err(format!(
                            "{ctx}: submit must be \"client\" or \"coordinator\", got {other:?}"
                        ))
                    }
                }
            }
            "clients" => spec.clients = req_usize(v, key, ctx)?,
            other => return Err(format!("{ctx}: unknown kv key {other:?}")),
        }
    }
    if spec.partitions == 0 {
        return Err(format!("{ctx}: partitions must be at least 1"));
    }
    if spec.replication == 0 {
        return Err(format!("{ctx}: replication must be at least 1"));
    }
    if spec.submit == SubmitMode::Client && spec.clients == 0 {
        return Err(format!(
            "{ctx}: submit = \"client\" needs at least one client process"
        ));
    }
    Ok(spec)
}

fn group_from_value(v: &Value, name: &str) -> Result<Group, String> {
    let ctx = format!("group {name:?}");
    if let Some(nodes) = v.get("nodes") {
        let arr = nodes
            .as_array()
            .ok_or_else(|| format!("{ctx}: nodes must be an array"))?;
        let mut out = Vec::new();
        for x in arr {
            let i = x
                .as_int()
                .ok_or_else(|| format!("{ctx}: nodes entries must be integers"))?;
            out.push(
                usize::try_from(i)
                    .map_err(|_| format!("{ctx}: node index must be non-negative, got {i}"))?,
            );
        }
        Ok(Group::Nodes(out))
    } else if let Some(r) = v.get("range") {
        Ok(Group::Range {
            first: req_usize(r, "first", &ctx)?,
            count: req_usize(r, "count", &ctx)?,
        })
    } else if let Some(r) = v.get("stride") {
        Ok(Group::Stride {
            first: req_usize(r, "first", &ctx)?,
            step: req_usize(r, "step", &ctx)?,
            count: req_usize(r, "count", &ctx)?,
        })
    } else if let Some(r) = v.get("spread") {
        Ok(Group::Spread {
            first: req_usize(r, "first", &ctx)?,
            count: req_usize(r, "count", &ctx)?,
        })
    } else if let Some(r) = v.get("percent") {
        Ok(Group::Percent {
            pct: req_f64(r, "pct", &ctx)?,
            min: req_usize(r, "min", &ctx)?,
        })
    } else {
        Err(format!(
            "{ctx}: expected one of nodes/range/stride/spread/percent"
        ))
    }
}

fn target_from_value(v: &Value, ctx: &str) -> Result<Target, String> {
    if let Some(g) = v.get("group") {
        Ok(Target::Group(
            g.as_str()
                .ok_or_else(|| format!("{ctx}: group must be a string"))?
                .to_string(),
        ))
    } else if let Some(nodes) = v.get("nodes") {
        let arr = nodes
            .as_array()
            .ok_or_else(|| format!("{ctx}: nodes must be an array"))?;
        let mut out = Vec::new();
        for x in arr {
            let i = x
                .as_int()
                .ok_or_else(|| format!("{ctx}: nodes entries must be integers"))?;
            out.push(
                usize::try_from(i)
                    .map_err(|_| format!("{ctx}: node index must be non-negative, got {i}"))?,
            );
        }
        Ok(Target::Nodes(out))
    } else {
        Err(format!("{ctx}: expected group = \"...\" or nodes = [...]"))
    }
}

fn latency_from_value(v: &Value, ctx: &str) -> Result<LatencyDist, String> {
    match req_str(v, "dist", ctx)? {
        "uniform" => Ok(LatencyDist::Uniform {
            base_ms: req_f64(v, "base_ms", ctx)?,
            jitter_ms: req_f64(v, "jitter_ms", ctx)?,
        }),
        "exponential" => Ok(LatencyDist::Exponential {
            base_ms: req_f64(v, "base_ms", ctx)?,
            mean_ms: req_f64(v, "mean_ms", ctx)?,
        }),
        "pareto" => Ok(LatencyDist::Pareto {
            base_ms: req_f64(v, "base_ms", ctx)?,
            scale_ms: req_f64(v, "scale_ms", ctx)?,
            alpha: req_f64(v, "alpha", ctx)?,
        }),
        other => Err(format!("{ctx}: unknown latency dist {other:?}")),
    }
}

const FAULT_KEYS: &[&str] = &[
    "crash",
    "ingress_drop",
    "egress_drop",
    "partition",
    "blackhole_pair",
    "clear_blackhole_pair",
    "link_loss",
    "slow_node",
    "duplicate",
    "reorder",
    "latency",
];

fn inject_from_value(v: &Value, phase: usize, idx: usize) -> Result<Inject, String> {
    let ctx = format!("phase {phase} inject {idx}");
    let at_ms = opt_u64(v, "at_ms", &ctx)?.unwrap_or(0);
    let repeat = match v.get("repeat") {
        None => None,
        Some(r) => Some(Repeat {
            period_ms: req_uint(r, "period_ms", &ctx)?,
            count: u32::try_from(req_uint(r, "count", &ctx)?)
                .map_err(|_| format!("{ctx}: repeat count too large"))?,
        }),
    };
    let mut found = None;
    for key in FAULT_KEYS {
        if let Some(fv) = v.get(key) {
            if found.is_some() {
                return Err(format!("{ctx}: more than one fault key"));
            }
            found = Some((*key, fv));
        }
    }
    let Some((key, fv)) = found else {
        return Err(format!("{ctx}: expected one fault key of {FAULT_KEYS:?}"));
    };
    let fault = match key {
        "crash" => FaultSpec::Crash(target_from_value(fv, &ctx)?),
        "ingress_drop" => {
            FaultSpec::IngressDrop(target_from_value(fv, &ctx)?, req_f64(fv, "p", &ctx)?)
        }
        "egress_drop" => {
            FaultSpec::EgressDrop(target_from_value(fv, &ctx)?, req_f64(fv, "p", &ctx)?)
        }
        "partition" => FaultSpec::Partition(target_from_value(fv, &ctx)?),
        "blackhole_pair" => FaultSpec::BlackholePair(
            req_usize(fv, "a", &ctx)?,
            req_usize(fv, "b", &ctx)?,
        ),
        "clear_blackhole_pair" => FaultSpec::ClearBlackholePair(
            req_usize(fv, "a", &ctx)?,
            req_usize(fv, "b", &ctx)?,
        ),
        "link_loss" => FaultSpec::LinkLoss(
            req_usize(fv, "src", &ctx)?,
            req_usize(fv, "dst", &ctx)?,
            req_f64(fv, "p", &ctx)?,
        ),
        "slow_node" => {
            FaultSpec::SlowNode(target_from_value(fv, &ctx)?, req_f64(fv, "factor", &ctx)?)
        }
        "duplicate" => FaultSpec::Duplicate(req_f64(fv, "p", &ctx)?),
        "reorder" => FaultSpec::Reorder(
            req_f64(fv, "p", &ctx)?,
            req_uint(fv, "extra_ms", &ctx)?,
        ),
        "latency" => FaultSpec::Latency(latency_from_value(fv, &ctx)?),
        _ => unreachable!("key list is exhaustive"),
    };
    Ok(Inject {
        at_ms,
        fault,
        repeat,
    })
}

fn workload_from_value(v: &Value, phase: usize, idx: usize) -> Result<Workload, String> {
    let ctx = format!("phase {phase} workload {idx}");
    let at_ms = opt_u64(v, "at_ms", &ctx)?.unwrap_or(0);
    let action = if let Some(j) = v.get("join") {
        WorkloadAction::Join {
            count: req_usize(j, "count", &ctx)?,
        }
    } else if let Some(l) = v.get("leave") {
        WorkloadAction::Leave(target_from_value(l, &ctx)?)
    } else if let Some(p) = v.get("put") {
        WorkloadAction::Put {
            count: req_usize(p, "count", &ctx)?,
            via: match p.get("via") {
                None => None,
                Some(_) => Some(req_usize(p, "via", &ctx)?),
            },
            value_size: match p.get("value_size") {
                None => None,
                Some(_) => Some(req_usize(p, "value_size", &ctx)?),
            },
            key_dist: match p.get("key_dist").and_then(|d| d.as_str()) {
                None | Some("sequential") => KeyDist::Sequential,
                Some("zipfian") => {
                    let s = match p.get("zipf_s") {
                        None => 1.1,
                        Some(v) => v
                            .as_f64()
                            .ok_or_else(|| format!("{ctx}: zipf_s must be a number"))?,
                    };
                    // NaN must fail too, hence not a plain `s <= 0.0`.
                    if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        return Err(format!(
                            "{ctx}: zipf_s must be > 0 (got {s}); s near 0 is uniform, \
                             ~1.1 matches web-cache skew"
                        ));
                    }
                    KeyDist::Zipfian { s }
                }
                Some(other) => {
                    return Err(format!(
                        "{ctx}: key_dist must be \"sequential\" or \"zipfian\" (got {other:?})"
                    ))
                }
            },
        }
    } else {
        return Err(format!(
            "{ctx}: expected join = {{...}}, leave = {{...}}, or put = {{...}}"
        ));
    };
    Ok(Workload { at_ms, action })
}

fn expect_from_value(v: &Value, phase: usize, idx: usize) -> Result<Expect, String> {
    let ctx = format!("phase {phase} expect {idx}");
    if let Some(c) = v.get("converge") {
        let to = size_expr(c, "to", &ctx)?;
        Ok(Expect::Converge {
            to,
            within_ms: req_uint(c, "within_ms", &ctx)?,
            within_full_ms: opt_u64(c, "within_full_ms", &ctx)?,
        })
    } else if let Some(a) = v.get("all_report") {
        Ok(Expect::AllReport(size_expr(a, "size", &ctx)?))
    } else if let Some(m) = v.get("max_size") {
        Ok(Expect::MaxSize(size_expr(m, "at_most", &ctx)?))
    } else if v.get("consistent_histories").is_some() {
        Ok(Expect::ConsistentHistories)
    } else if v.get("kv_available").is_some() {
        Ok(Expect::KvAvailable)
    } else if v.get("no_lost_acked_writes").is_some() {
        Ok(Expect::NoLostAckedWrites)
    } else if let Some(c) = v.get("kv_converged") {
        // `kv_converged = true` takes the default budget; a table form
        // sets it explicitly.
        Ok(Expect::KvConverged {
            within_ms: match c.get("within_ms") {
                None => 30_000,
                Some(_) => req_uint(c, "within_ms", &ctx)?,
            },
        })
    } else if let Some(s) = v.get("shed_observed") {
        // `shed_observed = true` demands at least one shed; the table
        // form raises the floor.
        Ok(Expect::ShedObserved {
            min: match s.get("min") {
                None => 1,
                Some(_) => req_uint(s, "min", &ctx)?,
            },
        })
    } else if let Some(r) = v.get("ops_recover") {
        Ok(Expect::OpsRecover {
            within_samples: match r.get("within_samples") {
                None => 10,
                Some(_) => req_usize(r, "within_samples", &ctx)?,
            },
            min_ops: match r.get("min_ops") {
                None => 1,
                Some(_) => req_uint(r, "min_ops", &ctx)?,
            },
        })
    } else {
        Err(format!(
            "{ctx}: expected converge/all_report/max_size/consistent_histories/\
             kv_available/no_lost_acked_writes/kv_converged/shed_observed/ops_recover"
        ))
    }
}

fn size_expr(v: &Value, key: &str, ctx: &str) -> Result<SizeExpr, String> {
    let raw = req(v, key, ctx)?;
    if let Some(i) = raw.as_int() {
        return Ok(SizeExpr::abs(i as usize));
    }
    let s = raw
        .as_str()
        .ok_or_else(|| format!("{ctx}: {key:?} must be an integer or a size expression"))?;
    SizeExpr::parse(s).map_err(|e| format!("{ctx}: {e}"))
}

fn phase_from_value(v: &Value, idx: usize) -> Result<Phase, String> {
    let ctx = format!("phase {idx}");
    let name = req_str(v, "name", &ctx)?.to_string();
    let run_ms = opt_u64(v, "run_ms", &ctx)?;
    let mut injects = Vec::new();
    if let Some(arr) = v.get("inject") {
        let arr = arr
            .as_array()
            .ok_or_else(|| format!("{ctx}: inject must be an array of tables"))?;
        for (i, iv) in arr.iter().enumerate() {
            injects.push(inject_from_value(iv, idx, i)?);
        }
    }
    let mut workloads = Vec::new();
    if let Some(arr) = v.get("workload") {
        let arr = arr
            .as_array()
            .ok_or_else(|| format!("{ctx}: workload must be an array of tables"))?;
        for (i, wv) in arr.iter().enumerate() {
            workloads.push(workload_from_value(wv, idx, i)?);
        }
    }
    let mut expects = Vec::new();
    if let Some(arr) = v.get("expect") {
        let arr = arr
            .as_array()
            .ok_or_else(|| format!("{ctx}: expect must be an array of tables"))?;
        for (i, ev) in arr.iter().enumerate() {
            expects.push(expect_from_value(ev, idx, i)?);
        }
    }
    Ok(Phase {
        name,
        injects,
        workloads,
        run_ms,
        expects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
name = "demo"
n = 50
seed = 7
topology = "static"

[full]
n = 500

[groups.victims]
stride = { first = 2, step = 5, count = 10 }

[groups.lossy]
percent = { pct = 1.0, min = 2 }

[[phase]]
name = "steady"
run_ms = 5000
  [[phase.expect]]
  all_report = { size = "n" }

[[phase]]
name = "chaos"
  [[phase.inject]]
  at_ms = 0
  crash = { group = "victims" }
  [[phase.inject]]
  at_ms = 1000
  ingress_drop = { group = "lossy", p = 1.0 }
  repeat = { period_ms = 40000, count = 3 }
  [[phase.inject]]
  latency = { dist = "pareto", base_ms = 1.0, scale_ms = 2.0, alpha = 1.5 }
  [[phase.workload]]
  at_ms = 2000
  leave = { nodes = [30] }
  [[phase.expect]]
  converge = { to = "n - victims", within_ms = 180000, within_full_ms = 360000 }
  [[phase.expect]]
  consistent_histories = true
"#;

    #[test]
    fn loads_the_full_schema() {
        let s = Scenario::from_toml(DOC).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!((s.n, s.seed), (50, 7));
        assert_eq!(s.topology, Topology::Static);
        assert_eq!(s.full.n, Some(500));
        assert_eq!(s.groups.len(), 2);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.phases[0].run_ms, Some(5000));
        assert_eq!(s.phases[1].injects.len(), 3);
        assert_eq!(
            s.phases[1].injects[1].repeat,
            Some(Repeat { period_ms: 40_000, count: 3 })
        );
        assert!(matches!(
            s.phases[1].injects[2].fault,
            FaultSpec::Latency(LatencyDist::Pareto { .. })
        ));
        assert_eq!(s.phases[1].workloads.len(), 1);
        match &s.phases[1].expects[0] {
            Expect::Converge { to, within_ms, within_full_ms } => {
                assert_eq!(to.describe(), "n-victims");
                assert_eq!(*within_ms, 180_000);
                assert_eq!(*within_full_ms, Some(360_000));
            }
            other => panic!("wrong expect {other:?}"),
        }
        assert_eq!(s.phases[1].expects[1], Expect::ConsistentHistories);
    }

    #[test]
    fn loads_settings_and_kv_tables() {
        let doc = r#"
name = "kv-demo"
n = 8
topology = "static"

[settings]
k = 8
h = 7
l = 2
fd_probe_interval_ms = 500
client_window = 32
kv_inbox = 256
kv_shed_p99_ms = 40
peer_quota_frames = 1000

[kv]
partitions = 16
replication = 3
op_window_ms = 4000
repair_interval_ms = 750
value_size = 128
submit = "coordinator"

[[phase]]
name = "load"
  [[phase.workload]]
  at_ms = 1000
  put = { count = 50, via = 0 }
  [[phase.workload]]
  at_ms = 2000
  put = { count = 5, value_size = 512 }
  [[phase.expect]]
  kv_available = true
  [[phase.expect]]
  no_lost_acked_writes = true
  [[phase.expect]]
  kv_converged = true
  [[phase.expect]]
  kv_converged = { within_ms = 12000 }
  [[phase.expect]]
  shed_observed = { min = 3 }
  [[phase.expect]]
  ops_recover = { within_samples = 5, min_ops = 2 }
"#;
        let s = Scenario::from_toml(doc).unwrap();
        assert_eq!(s.settings.k, Some(8));
        assert_eq!(s.settings.fd_probe_interval_ms, Some(500));
        assert_eq!(s.settings.gossip_fanout, None);
        assert_eq!(s.settings.client_window, Some(32));
        assert_eq!(s.settings.kv_inbox, Some(256));
        assert_eq!(s.settings.kv_shed_p99_ms, Some(40));
        assert_eq!(s.settings.peer_quota_frames, Some(1000));
        let kv = s.kv.unwrap();
        assert_eq!((kv.partitions, kv.replication, kv.op_window_ms), (16, 3, 4000));
        assert_eq!((kv.repair_interval_ms, kv.value_size), (750, 128));
        assert_eq!((kv.submit, kv.clients), (SubmitMode::Coordinator, 1));
        assert_eq!(
            s.phases[0].workloads[0].action,
            WorkloadAction::Put { count: 50, via: Some(0), value_size: None, key_dist: KeyDist::Sequential }
        );
        assert_eq!(
            s.phases[0].workloads[1].action,
            WorkloadAction::Put { count: 5, via: None, value_size: Some(512), key_dist: KeyDist::Sequential }
        );
        assert_eq!(s.phases[0].expects[0], Expect::KvAvailable);
        assert_eq!(s.phases[0].expects[1], Expect::NoLostAckedWrites);
        assert_eq!(
            s.phases[0].expects[2],
            Expect::KvConverged { within_ms: 30_000 }
        );
        assert_eq!(
            s.phases[0].expects[3],
            Expect::KvConverged { within_ms: 12_000 }
        );
        assert_eq!(s.phases[0].expects[4], Expect::ShedObserved { min: 3 });
        assert_eq!(
            s.phases[0].expects[5],
            Expect::OpsRecover { within_samples: 5, min_ops: 2 }
        );
        let bad_submit =
            "name=\"x\"\nn=5\n[kv]\nsubmit = \"postcard\"\n[[phase]]\nname=\"p\"\nrun_ms=1\n";
        assert!(Scenario::from_toml(bad_submit).unwrap_err().contains("submit"));
        let no_clients =
            "name=\"x\"\nn=5\n[kv]\nclients = 0\n[[phase]]\nname=\"p\"\nrun_ms=1\n";
        assert!(Scenario::from_toml(no_clients).unwrap_err().contains("client"));

        // Typo'd settings keys and invalid combinations fail the load.
        let typo = "name=\"x\"\nn=5\n[settings]\nfd_probe_intervalms = 1\n[[phase]]\nname=\"p\"\nrun_ms=1\n";
        assert!(Scenario::from_toml(typo).unwrap_err().contains("unknown settings key"));
        let bad = "name=\"x\"\nn=5\n[settings]\nk = 3\nh = 9\n[[phase]]\nname=\"p\"\nrun_ms=1\n";
        assert!(Scenario::from_toml(bad).unwrap_err().contains("invalid"));
        let bad_kv = "name=\"x\"\nn=5\n[kv]\nreplication = 0\n[[phase]]\nname=\"p\"\nrun_ms=1\n";
        assert!(Scenario::from_toml(bad_kv).unwrap_err().contains("replication"));
    }

    #[test]
    fn parses_zipfian_key_dist() {
        let doc = r#"
name = "zipf"
n = 5
[kv]
partitions = 8
[[phase]]
name = "load"
  [[phase.workload]]
  at_ms = 100
  put = { count = 10, key_dist = "zipfian", zipf_s = 1.3 }
  [[phase.workload]]
  at_ms = 200
  put = { count = 10, key_dist = "zipfian" }
  [[phase.workload]]
  at_ms = 300
  put = { count = 10, key_dist = "sequential" }
"#;
        let s = Scenario::from_toml(doc).unwrap();
        let dist_of = |i: usize| match s.phases[0].workloads[i].action {
            WorkloadAction::Put { key_dist, .. } => key_dist,
            ref other => panic!("wrong action {other:?}"),
        };
        assert_eq!(dist_of(0), KeyDist::Zipfian { s: 1.3 });
        assert_eq!(dist_of(1), KeyDist::Zipfian { s: 1.1 }); // default skew
        assert_eq!(dist_of(2), KeyDist::Sequential);

        let bad_s = "name=\"x\"\nn=5\n[[phase]]\nname=\"p\"\n[[phase.workload]]\nput = { count = 1, key_dist = \"zipfian\", zipf_s = 0.0 }\n";
        assert!(Scenario::from_toml(bad_s).unwrap_err().contains("zipf_s"));
        let bad_dist = "name=\"x\"\nn=5\n[[phase]]\nname=\"p\"\n[[phase.workload]]\nput = { count = 1, key_dist = \"gaussian\" }\n";
        assert!(Scenario::from_toml(bad_dist).unwrap_err().contains("key_dist"));
    }

    #[test]
    fn helpful_errors_on_bad_schema() {
        assert!(Scenario::from_toml("n = 5\n").unwrap_err().contains("name"));
        let no_phase = "name = \"x\"\nn = 5\n";
        assert!(Scenario::from_toml(no_phase).unwrap_err().contains("phase"));
        let bad_fault = "name=\"x\"\nn=5\n[[phase]]\nname=\"p\"\n[[phase.inject]]\nfoo = 1\n";
        assert!(Scenario::from_toml(bad_fault).unwrap_err().contains("fault key"));
        let two_faults = "name=\"x\"\nn=5\n[[phase]]\nname=\"p\"\n[[phase.inject]]\ncrash = { nodes = [0] }\nduplicate = { p = 0.5 }\n";
        assert!(Scenario::from_toml(two_faults).unwrap_err().contains("more than one"));
    }
}
