//! Runs a TOML scenario file on a chosen driver and prints the report.
//!
//! ```text
//! cargo run --release -p rapid-scenario --bin scenario -- \
//!     scenarios/smoke_crash.toml [--driver sim|real|both] \
//!     [--system rapid|rapid-c|memberlist|zookeeper|akka] \
//!     [--seed N] [--threads N] [--shards N] [--full] [--json] \
//!     [--trace FILE] [--metrics FILE]
//!
//! `--threads N` overrides the simulator worker-thread count (the
//! `[settings] threads` key); reports are bit-identical at any count.
//! `--shards N` overrides the real driver's per-process KV shard count
//! (the `[settings] kv_shards` key): N worker threads per process, each
//! owning a rendezvous-assigned slice of the partitions. The sans-io
//! state machine is shard-count-oblivious, so reports are equivalent at
//! any count; the sim driver ignores the knob.
//! `--trace FILE` writes the merged flight-recorder trace as JSONL
//! (sim driver, rapid-family systems) — also bit-identical at any
//! thread count. When an expectation fails, the recorder's tail is
//! printed to stderr regardless of `--trace`.
//! `--metrics FILE` writes the merged per-node timeline as JSONL,
//! one line per (sample instant, node) in `(t, node)` order — also
//! bit-identical at any thread count on the sim driver. If the
//! scenario does not set `obs_sample_ms`, the flag turns sampling on
//! at a 1000ms cadence.
//! ```
//!
//! Exit status is non-zero if any evaluated expectation failed.

use rapid_scenario::{runner, Driver, RealDriver, Scenario, SimDriver, SystemKind};

struct Opts {
    path: String,
    driver: String,
    system: SystemKind,
    seed: Option<u64>,
    threads: Option<usize>,
    shards: Option<usize>,
    full: bool,
    json: bool,
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse_args() -> Result<Opts, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut opts = Opts {
        path: String::new(),
        driver: "sim".into(),
        system: SystemKind::Rapid,
        seed: None,
        threads: None,
        shards: None,
        full: false,
        json: false,
        trace: None,
        metrics: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--driver" => {
                i += 1;
                opts.driver = argv.get(i).cloned().ok_or("--driver needs a value")?;
            }
            "--system" => {
                i += 1;
                let s = argv.get(i).ok_or("--system needs a value")?;
                opts.system =
                    SystemKind::parse(s).ok_or_else(|| format!("unknown system {s:?}"))?;
            }
            "--seed" => {
                i += 1;
                opts.seed = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--seed needs an integer")?,
                );
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&t: &usize| t >= 1)
                        .ok_or("--threads needs a positive integer")?,
                );
            }
            "--shards" => {
                i += 1;
                opts.shards = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&t: &usize| t >= 1)
                        .ok_or("--shards needs a positive integer")?,
                );
            }
            "--full" => opts.full = true,
            "--json" => opts.json = true,
            "--trace" => {
                i += 1;
                opts.trace = Some(argv.get(i).cloned().ok_or("--trace needs a file path")?);
            }
            "--metrics" => {
                i += 1;
                opts.metrics =
                    Some(argv.get(i).cloned().ok_or("--metrics needs a file path")?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path => {
                if !opts.path.is_empty() {
                    return Err("more than one scenario file given".into());
                }
                opts.path = path.to_string();
            }
        }
        i += 1;
    }
    if opts.path.is_empty() {
        return Err("usage: scenario <file.toml> [--driver sim|real|both] [--system S] [--seed N] [--threads N] [--shards N] [--full] [--json] [--trace FILE] [--metrics FILE]".into());
    }
    Ok(opts)
}

fn print_report(report: &rapid_scenario::Report, json: bool) {
    if json {
        println!("{}", report.to_json().to_pretty(2));
        return;
    }
    println!(
        "scenario {:?} on {} (n={}, seed={}): {}",
        report.scenario,
        report.driver,
        report.n,
        report.seed,
        if report.passed { "PASS" } else { "FAIL" }
    );
    for p in &report.phases {
        let dur = p.end_ms - p.start_ms;
        print!("  phase {:<16} {:>7}ms", p.name, dur);
        if let Some(t) = p.converged_at_ms {
            print!("  converged@{}ms", t - p.start_ms);
        }
        if let Some(v) = p.view_changes {
            print!("  views={v}");
        }
        if let Some(t) = p.traffic {
            print!("  tx={}B rx={}B", t.bytes_out, t.bytes_in);
        }
        if let Some(kv) = p.kv {
            print!(
                "  kv: {}/{} acked, {} rebalances, {}B moved",
                kv.acked, kv.puts, kv.rebalances, kv.bytes_moved
            );
            if kv.repairs > 0 {
                print!(", {} repairs ({}B)", kv.repairs, kv.repair_bytes);
            }
            if kv.partitions_lost > 0 {
                print!(", {} partitions LOST", kv.partitions_lost);
            }
        }
        if let Some(c) = &p.convergence {
            print!(
                "  fault->install p50={}ms p99={}ms max={}ms ({} procs)",
                c.p50,
                c.p99,
                c.max,
                c.samples.len()
            );
        }
        println!();
        for e in &p.expects {
            let verdict = match e.passed {
                Some(true) => "ok",
                Some(false) => "FAILED",
                None => "skipped (unsupported on this driver)",
            };
            println!("    expect {:<40} {verdict}", e.desc);
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.path);
            std::process::exit(2);
        }
    };
    let mut scenario = match Scenario::from_toml(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.path);
            std::process::exit(2);
        }
    };
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
    }
    if let Some(threads) = opts.threads {
        // Same effect as `[settings] threads = N` in the file; the sim
        // driver hands it to the engine, the real driver ignores it.
        scenario.settings.threads = Some(threads);
    }
    if let Some(shards) = opts.shards {
        // Same effect as `[settings] kv_shards = N` in the file; the
        // real driver spawns N data-plane workers per process, the sim
        // driver (single sans-io node per process) ignores it.
        scenario.settings.kv_shards = Some(shards);
    }
    if opts.full {
        scenario.apply_full();
    }
    if opts.metrics.is_some() && scenario.settings.obs_sample_ms.is_none() {
        // Asking for a metrics export implies sampling; default cadence 1s.
        scenario.settings.obs_sample_ms = Some(1000);
    }

    let mut all_passed = true;
    let drivers: Vec<&str> = match opts.driver.as_str() {
        "both" => vec!["sim", "real"],
        d => vec![d],
    };
    for d in drivers {
        let (report, trace, metrics, obs_dropped) = match d {
            "sim" => {
                let mut driver = match SimDriver::new(opts.system, &scenario) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("sim driver: {e}");
                        std::process::exit(2);
                    }
                };
                let r = runner::run(&scenario, &mut driver);
                (
                    r,
                    driver.flight_dump(),
                    driver.metrics_dump(),
                    driver.obs_dropped(),
                )
            }
            "real" => {
                if opts.system != SystemKind::Rapid {
                    eprintln!("the real driver hosts rapid only");
                    std::process::exit(2);
                }
                let mut driver = match RealDriver::new(&scenario) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("real driver: {e}");
                        std::process::exit(2);
                    }
                };
                let r = runner::run(&scenario, &mut driver);
                (
                    r,
                    driver.flight_dump(),
                    driver.metrics_dump(),
                    driver.obs_dropped(),
                )
            }
            other => {
                eprintln!("unknown driver {other:?} (sim, real, both)");
                std::process::exit(2);
            }
        };
        if let Some(path) = &opts.trace {
            let mut out = trace.join("\n");
            if !out.is_empty() {
                out.push('\n');
            }
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(2);
            }
        }
        if let Some(path) = &opts.metrics {
            let mut out = metrics.join("\n");
            if !out.is_empty() {
                out.push('\n');
            }
            if let Err(e) = std::fs::write(path, out) {
                eprintln!("cannot write metrics {path}: {e}");
                std::process::exit(2);
            }
        }
        if obs_dropped > 0 {
            eprintln!(
                "warning: observability rings dropped {obs_dropped} events \
                 (raise [settings] obs_ring or lower obs_sample_ms)"
            );
        }
        match report {
            Ok(r) => {
                print_report(&r, opts.json);
                // A failed expectation dumps the flight recorder's tail:
                // the causal history leading into the failure, not just
                // the verdict.
                for p in &r.phases {
                    if !p.failure_dump.is_empty() {
                        eprintln!(
                            "phase {:?} failed; last {} trace events:",
                            p.name,
                            p.failure_dump.len()
                        );
                        for line in &p.failure_dump {
                            eprintln!("{line}");
                        }
                    }
                }
                all_passed &= r.passed;
            }
            Err(e) => {
                eprintln!("scenario failed to run: {e}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(if all_passed { 0 } else { 1 });
}
