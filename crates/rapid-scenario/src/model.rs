//! The declarative scenario model.
//!
//! A [`Scenario`] is a cluster description (size, topology, named node
//! groups) plus a timeline of [`Phase`]s. Each phase schedules fault
//! [`Inject`]ions and [`Workload`] actions at offsets from the phase
//! start, optionally runs for a fixed duration, and then evaluates
//! [`Expect`]ations. The same scenario value drives the simulator or a
//! real transport cluster (see [`crate::driver`]).
//!
//! Scenarios are built in code ([`Scenario::build`]) or loaded from TOML
//! ([`Scenario::from_toml`]); both produce identical values, and the
//! shipped `scenarios/*.toml` files are the canonical examples.

use rapid_core::settings::Settings;
use rapid_route::PlacementConfig;
use rapid_sim::LatencyDist;

/// How `[kv]` workloads reach the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// Through view-subscribed smart clients ([`rapid_route::KvClient`]):
    /// each op routed directly to the partition leader, any-replica
    /// fallback on a stale view, bounded in-flight window. The default.
    #[default]
    Client,
    /// Legacy raw coordinator submission: ops handed to a member node
    /// which forwards to leaders (one extra hop per remote op).
    Coordinator,
}

/// Configuration of the replicated KV data plane (`[kv]` TOML table).
/// Present on a scenario ⇒ every cluster process hosts a
/// `rapid-route` KV node next to its membership node, and `put`
/// workloads / `kv_available` / `no_lost_acked_writes` expectations
/// become available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvSpec {
    /// Number of fixed partitions.
    pub partitions: u32,
    /// Replication factor.
    pub replication: usize,
    /// How long the driver lets a batch of client operations run before
    /// scoring unresolved ones as failed (virtual ms on the simulator,
    /// wall-clock on the real driver).
    pub op_window_ms: u64,
    /// Anti-entropy repair cadence of every KV node (0 disables repair —
    /// then a lost handoff guards its partition forever).
    pub repair_interval_ms: u64,
    /// Minimum encoded size of `put` workload values: small payloads are
    /// padded to this many bytes so `bytes_moved`/`repair_bytes` measure
    /// something real. 0 keeps the natural few-byte values. Individual
    /// `put` workloads can override it.
    pub value_size: usize,
    /// How workload ops reach the cluster (`submit = "client"` |
    /// `"coordinator"` in TOML). Smart clients by default.
    pub submit: SubmitMode,
    /// Number of smart-client processes attached to the cluster when
    /// `submit = "client"` (ignored in coordinator mode).
    pub clients: usize,
}

impl Default for KvSpec {
    fn default() -> Self {
        KvSpec {
            partitions: 32,
            replication: 3,
            op_window_ms: 5_000,
            repair_interval_ms: 1_000,
            value_size: 0,
            submit: SubmitMode::Client,
            clients: 1,
        }
    }
}

impl KvSpec {
    /// The placement parameters this spec induces.
    pub fn placement(&self) -> PlacementConfig {
        PlacementConfig {
            partitions: self.partitions,
            replication: self.replication,
        }
    }

    /// Per-operation timeout inside the data plane: half the batch
    /// window (so one retry round fits), clamped to a sane range.
    pub fn op_timeout_ms(&self) -> u64 {
        (self.op_window_ms / 2).clamp(500, 2_500)
    }
}

/// Per-scenario overrides of the protocol defaults (`[settings]` TOML
/// table): only the named fields change, everything else stays at the
/// driver's baseline (paper defaults on the simulator, wall-clock-tuned
/// defaults on the real driver). `None` everywhere ⇒ no override.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SettingsPatch {
    /// Monitoring rings (paper `K`).
    pub k: Option<usize>,
    /// High watermark (paper `H`).
    pub h: Option<usize>,
    /// Low watermark (paper `L`).
    pub l: Option<usize>,
    /// Host tick interval.
    pub tick_interval_ms: Option<u64>,
    /// Edge failure detector probe period.
    pub fd_probe_interval_ms: Option<u64>,
    /// Edge failure detector probe timeout.
    pub fd_probe_timeout_ms: Option<u64>,
    /// Edge failure detector window size.
    pub fd_window: Option<usize>,
    /// Edge failure detector failure fraction.
    pub fd_fail_fraction: Option<f64>,
    /// Unstable-mode reinforcement timeout.
    pub reinforce_timeout_ms: Option<u64>,
    /// Fast-path abandonment base delay.
    pub consensus_fallback_base_ms: Option<u64>,
    /// Fast-path abandonment jitter.
    pub consensus_fallback_jitter_ms: Option<u64>,
    /// Classic-round takeover timeout.
    pub classic_round_timeout_ms: Option<u64>,
    /// Gossip fan-out per round.
    pub gossip_fanout: Option<usize>,
    /// Gossip round interval.
    pub gossip_interval_ms: Option<u64>,
    /// Join phase retry timeout.
    pub join_timeout_ms: Option<u64>,
    /// First-view bootstrap batch.
    pub bootstrap_batch: Option<usize>,
    /// Gossip vs unicast-to-all broadcaster.
    pub use_gossip_broadcast: Option<bool>,
    /// Per-peer wire batching (one frame per destination per event).
    pub batch_wire: Option<bool>,
    /// Simulator worker threads (`1` = sequential reference engine;
    /// traces are bit-identical at any count). Ignored by the real
    /// driver.
    pub threads: Option<usize>,
    /// Per-node flight-recorder ring capacity (`0` = off). Rapid-family
    /// sim runs default this on (see `SimDriver::new`) so a failed
    /// expectation can dump the recent protocol history; set explicitly
    /// to override.
    pub obs_ring: Option<usize>,
    /// Metrics timeline sampling cadence in ms (`0` = off, the
    /// default). When on, every report phase carries a `timeline`
    /// object and `--metrics FILE` exports the merged per-node series.
    pub obs_sample_ms: Option<u64>,
    /// Real-driver KV data-plane shard count (`1` = single-threaded
    /// oracle path; ignored by the simulator).
    pub kv_shards: Option<usize>,
    /// Smart-client in-flight op window.
    pub client_window: Option<usize>,
    /// KV node remote-op inbox bound (admission control hard limit).
    pub kv_inbox: Option<usize>,
    /// Soft-shed threshold on the last interval's op p99 (`0` = off).
    pub kv_shed_p99_ms: Option<u64>,
    /// Per-peer decode quota: frames per interval (`0` = off).
    pub peer_quota_frames: Option<u64>,
    /// Per-peer decode quota: bytes per interval (`0` = off).
    pub peer_quota_bytes: Option<u64>,
    /// Per-peer decode quota window length.
    pub peer_quota_interval_ms: Option<u64>,
}

impl SettingsPatch {
    /// Whether the patch changes anything.
    pub fn is_empty(&self) -> bool {
        *self == SettingsPatch::default()
    }

    /// Applies the overrides to a baseline, validating the result (a
    /// scenario demanding `H > K` should fail at load, not corrupt a
    /// run).
    pub fn apply(&self, mut base: Settings) -> Result<Settings, String> {
        macro_rules! set {
            ($($field:ident),*) => {
                $(if let Some(v) = self.$field { base.$field = v; })*
            };
        }
        set!(
            k, h, l, tick_interval_ms, fd_probe_interval_ms, fd_probe_timeout_ms,
            fd_window, fd_fail_fraction, reinforce_timeout_ms, consensus_fallback_base_ms,
            consensus_fallback_jitter_ms, classic_round_timeout_ms, gossip_fanout,
            gossip_interval_ms, join_timeout_ms, bootstrap_batch, use_gossip_broadcast,
            batch_wire, threads, obs_ring, obs_sample_ms, kv_shards, client_window, kv_inbox,
            kv_shed_p99_ms, peer_quota_frames, peer_quota_bytes, peer_quota_interval_ms
        );
        base.validate()
            .map_err(|e| format!("[settings] produces an invalid combination: {e}"))?;
        Ok(base)
    }
}

/// How the cluster comes to exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One seed at t=0; the other `n−1` processes join at t=10 s (the
    /// paper's bootstrap experiments).
    Bootstrap,
    /// All `n` processes start as members of one static configuration
    /// (the paper's failure experiments). Simulator-only: a real cluster
    /// cannot teleport into a steady state, so the real driver bootstraps
    /// and converges first instead.
    Static,
}

/// A named set of cluster-process indices, resolved against `n` at run
/// time so one scenario file scales from laptop to paper size.
#[derive(Clone, Debug, PartialEq)]
pub enum Group {
    /// Explicit indices.
    Nodes(Vec<usize>),
    /// `first, first+1, ..., first+count-1`.
    Range {
        /// First index.
        first: usize,
        /// Number of indices.
        count: usize,
    },
    /// `first, first+step, ...` — `count` indices.
    Stride {
        /// First index.
        first: usize,
        /// Gap between indices.
        step: usize,
        /// Number of indices.
        count: usize,
    },
    /// `count` victims spread evenly across the id space:
    /// `first + i*(n/count − 1)`.
    Spread {
        /// First index.
        first: usize,
        /// Number of indices.
        count: usize,
    },
    /// The first `max(round(n*pct/100), min)` indices — "1% of the
    /// cluster" in the paper's scenarios.
    Percent {
        /// Percentage of `n`.
        pct: f64,
        /// Lower bound on the resolved size.
        min: usize,
    },
}

impl Group {
    /// Resolves to concrete cluster-process indices for a cluster of `n`.
    pub fn resolve(&self, n: usize) -> Vec<usize> {
        match self {
            Group::Nodes(v) => v.clone(),
            Group::Range { first, count } => (*first..first + count).collect(),
            Group::Stride { first, step, count } => {
                (0..*count).map(|i| first + i * step).collect()
            }
            Group::Spread { first, count } => {
                let stride = (n / count.max(&1)).saturating_sub(1).max(1);
                (0..*count).map(|i| first + i * stride).collect()
            }
            Group::Percent { pct, min } => {
                let count = ((n as f64 * pct / 100.0).round() as usize).max(*min);
                (0..count).collect()
            }
        }
    }
}

/// Either a named group or inline indices, used by faults and workloads.
#[derive(Clone, Debug, PartialEq)]
pub enum Target {
    /// A named group declared on the scenario.
    Group(String),
    /// Inline indices.
    Nodes(Vec<usize>),
}

impl Target {
    /// A named-group target.
    pub fn group(name: &str) -> Target {
        Target::Group(name.to_string())
    }

    /// A single-node target.
    pub fn node(i: usize) -> Target {
        Target::Nodes(vec![i])
    }
}

/// A fault to inject, in cluster-process index space.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// Crash every node of the target.
    Crash(Target),
    /// Set the ingress packet-drop probability of every target node.
    IngressDrop(Target, f64),
    /// Set the egress packet-drop probability of every target node.
    EgressDrop(Target, f64),
    /// Partition the target from the rest of the cluster.
    Partition(Target),
    /// Bidirectional blackhole between two nodes.
    BlackholePair(usize, usize),
    /// Remove the bidirectional blackhole between two nodes.
    ClearBlackholePair(usize, usize),
    /// One-way loss probability on a single link.
    LinkLoss(usize, usize, f64),
    /// Latency multiplier on every link touching the target nodes.
    SlowNode(Target, f64),
    /// Global packet-duplication probability.
    Duplicate(f64),
    /// Probabilistic extra delay (reordering).
    Reorder(f64, u64),
    /// Replace the latency model.
    Latency(LatencyDist),
}

/// Repetition of an injection: fire `count` times, `period_ms` apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repeat {
    /// Gap between firings.
    pub period_ms: u64,
    /// Total number of firings (including the first).
    pub count: u32,
}

/// One scheduled fault injection within a phase.
#[derive(Clone, Debug, PartialEq)]
pub struct Inject {
    /// Offset from the phase start.
    pub at_ms: u64,
    /// The fault.
    pub fault: FaultSpec,
    /// Optional repetition (flip-flop schedules).
    pub repeat: Option<Repeat>,
}

impl Inject {
    /// An injection at `at_ms` after the phase starts.
    pub fn at(at_ms: u64, fault: FaultSpec) -> Inject {
        Inject {
            at_ms,
            fault,
            repeat: None,
        }
    }

    /// Repeats the injection `count` times, `period_ms` apart.
    pub fn every(mut self, period_ms: u64, count: u32) -> Inject {
        self.repeat = Some(Repeat { period_ms, count });
        self
    }
}

/// An application-level action within a phase.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Offset from the phase start.
    pub at_ms: u64,
    /// The action.
    pub action: WorkloadAction,
}

/// How a `put` workload draws keys from its `kv-NNNNN` keyspace
/// (`key_dist` in TOML).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum KeyDist {
    /// One write per key, in order (`kv-00000 .. kv-{count-1}`) — the
    /// uniform default every pre-existing scenario uses.
    #[default]
    Sequential,
    /// `count` writes drawn Zipf-distributed over the same `count`-key
    /// space: rank `k` carries weight `1/(k+1)^s`, so a few hot keys
    /// absorb most writes and one partition's shard becomes the
    /// hotspot. Sampling is seeded from the scenario seed — identical
    /// runs draw identical keys.
    Zipfian {
        /// Skew exponent (`zipf_s` in TOML, must be `> 0`; larger =
        /// hotter head; ~1.1 approximates web-cache traces).
        s: f64,
    },
}

/// The kinds of workload actions.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadAction {
    /// Start `count` fresh processes that join the cluster.
    Join {
        /// Number of joiners.
        count: usize,
    },
    /// Voluntary departure of every target node.
    Leave(Target),
    /// Write `count` keys (`kv-00000`, `kv-00001`, ...) through the KV
    /// data plane; repeated `put` workloads overwrite the same keys with
    /// fresh values, exercising version monotonicity. Requires `[kv]`.
    Put {
        /// Number of keys written.
        count: usize,
        /// Coordinator process index (`None` = first live process).
        via: Option<usize>,
        /// Minimum value size in bytes for this workload, overriding the
        /// `[kv]` table's `value_size` (`None` = inherit).
        value_size: Option<usize>,
        /// Key distribution (sequential sweep by default, or a seeded
        /// zipfian hot-key draw).
        key_dist: KeyDist,
    },
}

/// A cluster-size expression, resolved against `n` and the scenario's
/// groups: `n`, `n - 3`, or `n - <group>`.
#[derive(Clone, Debug, PartialEq)]
pub struct SizeExpr {
    /// Fixed subtrahend.
    pub minus: usize,
    /// Subtract the resolved size of this group.
    pub minus_group: Option<String>,
    /// Absolute size instead of `n`-relative (used when the expression
    /// was a plain integer).
    pub absolute: Option<usize>,
}

impl SizeExpr {
    /// The full cluster: `n`.
    pub fn n() -> SizeExpr {
        SizeExpr {
            minus: 0,
            minus_group: None,
            absolute: None,
        }
    }

    /// `n - k`.
    pub fn n_minus(k: usize) -> SizeExpr {
        SizeExpr {
            minus: k,
            ..SizeExpr::n()
        }
    }

    /// `n - |group|`.
    pub fn n_minus_group(name: &str) -> SizeExpr {
        SizeExpr {
            minus_group: Some(name.to_string()),
            ..SizeExpr::n()
        }
    }

    /// A fixed size.
    pub fn abs(v: usize) -> SizeExpr {
        SizeExpr {
            absolute: Some(v),
            ..SizeExpr::n()
        }
    }

    /// Parses `"n"`, `"n - 10"`, `"n - groupname"`, or `"42"`.
    pub fn parse(s: &str) -> Result<SizeExpr, String> {
        let s = s.trim();
        if let Ok(v) = s.parse::<usize>() {
            return Ok(SizeExpr::abs(v));
        }
        let Some(rest) = s.strip_prefix('n') else {
            return Err(format!("bad size expression {s:?}"));
        };
        let rest = rest.trim();
        if rest.is_empty() {
            return Ok(SizeExpr::n());
        }
        let Some(sub) = rest.strip_prefix('-') else {
            return Err(format!("bad size expression {s:?}"));
        };
        let sub = sub.trim();
        if let Ok(k) = sub.parse::<usize>() {
            Ok(SizeExpr::n_minus(k))
        } else if !sub.is_empty() {
            Ok(SizeExpr::n_minus_group(sub))
        } else {
            Err(format!("bad size expression {s:?}"))
        }
    }

    /// Resolves against the scenario.
    pub fn resolve(&self, scenario: &Scenario) -> Result<usize, String> {
        if let Some(v) = self.absolute {
            return Ok(v);
        }
        let mut v = scenario.n.saturating_sub(self.minus);
        if let Some(g) = &self.minus_group {
            v = v.saturating_sub(scenario.resolve_group_name(g)?.len());
        }
        Ok(v)
    }

    /// Renders the expression for report labels.
    pub fn describe(&self) -> String {
        if let Some(v) = self.absolute {
            return v.to_string();
        }
        match (&self.minus_group, self.minus) {
            (Some(g), 0) => format!("n-{g}"),
            (Some(g), k) => format!("n-{g}-{k}"),
            (None, 0) => "n".to_string(),
            (None, k) => format!("n-{k}"),
        }
    }
}

/// An expectation evaluated during or after a phase.
#[derive(Clone, Debug, PartialEq)]
pub enum Expect {
    /// Run (up to `within_ms`) until every live process reports exactly
    /// the target size; record the convergence instant.
    Converge {
        /// Target cluster size.
        to: SizeExpr,
        /// Budget from the evaluation point.
        within_ms: u64,
        /// Budget override under `--full` scale.
        within_full_ms: Option<u64>,
    },
    /// Instantaneous: every live process reports exactly this size.
    AllReport(SizeExpr),
    /// Instantaneous: no live process reports more than this size.
    MaxSize(SizeExpr),
    /// Every active Rapid node installed the same view-change sequence
    /// (strong consistency). Unsupported drivers record a skip.
    ConsistentHistories,
    /// Every key acked so far is currently readable (a `Found` answer)
    /// through a live coordinator. Requires `[kv]`.
    KvAvailable,
    /// Every key acked so far reads back at a version at least as new as
    /// its last acked write — no acknowledged write was lost to churn or
    /// rebalancing. Requires `[kv]`.
    NoLostAckedWrites,
    /// Anti-entropy has converged: every live replica of every partition
    /// reports the same digest and none is still awaiting a handoff.
    /// Polls until `within_ms` elapses. Requires `[kv]`.
    KvConverged {
        /// Budget from the evaluation point (virtual ms on the
        /// simulator, wall-clock on the real driver).
        within_ms: u64,
    },
    /// Admission control fired: the cluster shed at least `min` remote
    /// ops with a typed overload error so far. Requires `[kv]`.
    ShedObserved {
        /// Minimum cumulative shed count across all KV nodes.
        min: u64,
    },
    /// The data plane recovered after an overload burst: within the last
    /// `within_samples` merged timeline samples, at least one sample
    /// shows op throughput at or above `min_ops`.
    /// Requires `[kv]` and `obs_sample_ms > 0`.
    OpsRecover {
        /// How many trailing timeline samples to inspect.
        within_samples: usize,
        /// Ops/sample floor that counts as recovered.
        min_ops: u64,
    },
}

/// One phase of the timeline.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Phase {
    /// Phase name (report key).
    pub name: String,
    /// Fault injections, at offsets from the phase start.
    pub injects: Vec<Inject>,
    /// Workload actions, at offsets from the phase start.
    pub workloads: Vec<Workload>,
    /// If set, run until `phase_start + run_ms` before evaluating
    /// expectations.
    pub run_ms: Option<u64>,
    /// Expectations, evaluated in order after `run_ms` elapses.
    pub expects: Vec<Expect>,
}

impl Phase {
    /// A named, empty phase.
    pub fn new(name: &str) -> Phase {
        Phase {
            name: name.to_string(),
            ..Phase::default()
        }
    }

    /// Adds a fault injection.
    pub fn inject(mut self, i: Inject) -> Phase {
        self.injects.push(i);
        self
    }

    /// Adds a workload action.
    pub fn workload(mut self, at_ms: u64, action: WorkloadAction) -> Phase {
        self.workloads.push(Workload { at_ms, action });
        self
    }

    /// Sets the fixed run duration.
    pub fn run_for(mut self, ms: u64) -> Phase {
        self.run_ms = Some(ms);
        self
    }

    /// Adds an expectation.
    pub fn expect(mut self, e: Expect) -> Phase {
        self.expects.push(e);
        self
    }
}

/// Overrides applied when a scenario is run at `--full` (paper) scale.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FullOverrides {
    /// Cluster size at full scale.
    pub n: Option<usize>,
}

/// A complete declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name (report key).
    pub name: String,
    /// Cluster size (cluster processes; auxiliary ensembles excluded).
    pub n: usize,
    /// Master seed (simulator determinism).
    pub seed: u64,
    /// How the cluster forms.
    pub topology: Topology,
    /// Named node groups.
    pub groups: Vec<(String, Group)>,
    /// The timeline.
    pub phases: Vec<Phase>,
    /// `--full` scale overrides.
    pub full: FullOverrides,
    /// Protocol-settings overrides (empty patch = driver defaults).
    pub settings: SettingsPatch,
    /// KV data-plane configuration; `Some` attaches a `rapid-route` KV
    /// node to every cluster process.
    pub kv: Option<KvSpec>,
}

impl Scenario {
    /// Starts building a scenario.
    pub fn build(name: &str, n: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.to_string(),
                n,
                seed: 1,
                topology: Topology::Bootstrap,
                groups: Vec::new(),
                phases: Vec::new(),
                full: FullOverrides::default(),
                settings: SettingsPatch::default(),
                kv: None,
            },
        }
    }

    /// Resolves a named group.
    pub fn resolve_group_name(&self, name: &str) -> Result<Vec<usize>, String> {
        self.groups
            .iter()
            .find(|(g, _)| g == name)
            .map(|(_, g)| g.resolve(self.n))
            .ok_or_else(|| format!("unknown group {name:?}"))
    }

    /// Resolves a target to indices.
    pub fn resolve_target(&self, t: &Target) -> Result<Vec<usize>, String> {
        match t {
            Target::Group(name) => self.resolve_group_name(name),
            Target::Nodes(v) => Ok(v.clone()),
        }
    }

    /// Applies the `[full]` overrides (paper-scale run).
    pub fn apply_full(&mut self) {
        if let Some(n) = self.full.n {
            self.n = n;
        }
        for p in &mut self.phases {
            for e in &mut p.expects {
                if let Expect::Converge {
                    within_ms,
                    within_full_ms: Some(full),
                    ..
                } = e
                {
                    *within_ms = *full;
                }
            }
        }
    }

    /// Parses a scenario from TOML text (see `docs/SCENARIOS.md` for the
    /// schema; the shipped `scenarios/*.toml` are canonical examples).
    pub fn from_toml(text: &str) -> Result<Scenario, String> {
        let root = crate::toml::parse(text)?;
        crate::load::scenario_from_value(&root)
    }
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.scenario.topology = t;
        self
    }

    /// Declares a named group.
    pub fn group(mut self, name: &str, g: Group) -> Self {
        self.scenario.groups.push((name.to_string(), g));
        self
    }

    /// Appends a phase.
    pub fn phase(mut self, p: Phase) -> Self {
        self.scenario.phases.push(p);
        self
    }

    /// Sets the full-scale cluster size.
    pub fn full_n(mut self, n: usize) -> Self {
        self.scenario.full.n = Some(n);
        self
    }

    /// Applies protocol-settings overrides.
    pub fn settings(mut self, patch: SettingsPatch) -> Self {
        self.scenario.settings = patch;
        self
    }

    /// Attaches the KV data plane.
    pub fn kv(mut self, spec: KvSpec) -> Self {
        self.scenario.kv = Some(spec);
        self
    }

    /// Finishes the build.
    pub fn finish(self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_resolve_against_n() {
        assert_eq!(Group::Nodes(vec![3, 9]).resolve(100), vec![3, 9]);
        assert_eq!(Group::Range { first: 2, count: 3 }.resolve(100), vec![2, 3, 4]);
        assert_eq!(
            Group::Stride { first: 2, step: 5, count: 3 }.resolve(100),
            vec![2, 7, 12]
        );
        // fig08's victim spread: 1 + i*(n/10 - 1).
        assert_eq!(
            Group::Spread { first: 1, count: 10 }.resolve(200)[..3],
            [1, 20, 39]
        );
        // fig09's "1% of processes, at least 2".
        assert_eq!(Group::Percent { pct: 1.0, min: 2 }.resolve(200), vec![0, 1]);
        assert_eq!(
            Group::Percent { pct: 1.0, min: 2 }.resolve(1000).len(),
            10
        );
    }

    #[test]
    fn size_expressions_parse_and_resolve() {
        let s = Scenario::build("t", 50)
            .group("victims", Group::Range { first: 0, count: 3 })
            .finish();
        assert_eq!(SizeExpr::parse("n").unwrap().resolve(&s).unwrap(), 50);
        assert_eq!(SizeExpr::parse("n - 10").unwrap().resolve(&s).unwrap(), 40);
        assert_eq!(SizeExpr::parse("n-victims").unwrap().resolve(&s).unwrap(), 47);
        assert_eq!(SizeExpr::parse("42").unwrap().resolve(&s).unwrap(), 42);
        assert!(SizeExpr::parse("m - 1").is_err());
        assert!(
            SizeExpr::parse("n - nosuch").unwrap().resolve(&s).is_err(),
            "unknown group must fail at resolve time"
        );
    }

    #[test]
    fn full_overrides_apply() {
        let mut s = Scenario::build("t", 200)
            .full_n(1000)
            .phase(Phase::new("boot").expect(Expect::Converge {
                to: SizeExpr::n(),
                within_ms: 600_000,
                within_full_ms: Some(1_200_000),
            }))
            .finish();
        s.apply_full();
        assert_eq!(s.n, 1000);
        match &s.phases[0].expects[0] {
            Expect::Converge { within_ms, .. } => assert_eq!(*within_ms, 1_200_000),
            _ => unreachable!(),
        }
    }
}
