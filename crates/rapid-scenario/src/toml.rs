//! A dependency-free parser for the TOML subset scenario files use.
//!
//! Supported: `[table]` headers, `[[array-of-tables]]` headers, bare and
//! quoted keys, dotted header paths, basic `"..."` strings, integers,
//! floats, booleans, single- or multi-line arrays, and inline tables
//! (`{ k = v, ... }`). Comments start with `#`. That covers every shipped
//! scenario; anything outside the subset is a parse error, never a silent
//! misread.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array (including arrays of tables).
    Array(Vec<Value>),
    /// A table.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// The table behind this value, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer behind this value (floats with zero fraction qualify).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The number behind this value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }
}

/// Parses a TOML document into its root table.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut root = BTreeMap::new();
    // Path of the table currently being filled, as (key, array_index)
    // steps; None index = plain table.
    let mut current: Vec<(String, Option<usize>)> = Vec::new();

    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", lineno + 1);

        if let Some(path) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let keys = parse_key_path(path).map_err(&err)?;
            let idx = push_array_table(&mut root, &keys).map_err(&err)?;
            current = keys
                .iter()
                .map(|k| (k.clone(), None))
                .collect();
            current.last_mut().expect("non-empty path").1 = Some(idx);
        } else if let Some(path) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let keys = parse_key_path(path).map_err(&err)?;
            ensure_table(&mut root, &keys).map_err(&err)?;
            current = keys.into_iter().map(|k| (k, None)).collect();
        } else if let Some(eq) = find_top_level_eq(&line) {
            let key = parse_key(line[..eq].trim()).map_err(&err)?;
            let mut rhs = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance outside of strings.
            while !brackets_balanced(&rhs) {
                let Some((_, next)) = lines.next() else {
                    return Err(err("unterminated array".into()));
                };
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
            let (value, rest) = parse_value(rhs.trim()).map_err(&err)?;
            if !rest.trim().is_empty() {
                return Err(err(format!("trailing characters: {rest:?}")));
            }
            let table = navigate_mut(&mut root, &current).map_err(&err)?;
            if table.insert(key.clone(), value).is_some() {
                return Err(err(format!("duplicate key {key:?}")));
            }
        } else {
            return Err(err(format!("unrecognized line: {line:?}")));
        }
    }
    Ok(Value::Table(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let (mut depth, mut in_str) = (0i32, false);
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Finds the first `=` that is not inside a string.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_key(s: &str) -> Result<String, String> {
    let s = s.trim();
    if let Some(q) = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(q.to_string());
    }
    if !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(s.to_string())
    } else {
        Err(format!("bad key {s:?}"))
    }
}

fn parse_key_path(s: &str) -> Result<Vec<String>, String> {
    let keys: Result<Vec<String>, String> = s.split('.').map(parse_key).collect();
    let keys = keys?;
    if keys.is_empty() {
        return Err("empty table path".into());
    }
    Ok(keys)
}

fn ensure_table<'a>(
    root: &'a mut BTreeMap<String, Value>,
    keys: &[String],
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    let mut cur = root;
    for k in keys {
        let entry = cur
            .entry(k.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("{k:?} is not a table")),
            },
            _ => return Err(format!("{k:?} is not a table")),
        };
    }
    Ok(cur)
}

/// Appends a fresh table to the array at `keys`, creating it on first
/// sight. Returns the new element's index.
fn push_array_table(root: &mut BTreeMap<String, Value>, keys: &[String]) -> Result<usize, String> {
    let (last, parents) = keys.split_last().expect("checked non-empty");
    let parent = ensure_table(root, parents)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => {
            a.push(Value::Table(BTreeMap::new()));
            Ok(a.len() - 1)
        }
        _ => Err(format!("{last:?} is not an array of tables")),
    }
}

fn navigate_mut<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[(String, Option<usize>)],
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    let mut cur = root;
    for (k, idx) in path {
        let entry = cur
            .get_mut(k)
            .ok_or_else(|| format!("missing table {k:?}"))?;
        cur = match (entry, idx) {
            (Value::Table(t), None) => t,
            (Value::Array(a), Some(i)) => match a.get_mut(*i) {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("{k:?}[{i}] is not a table")),
            },
            (Value::Array(a), None) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("{k:?} is not a table")),
            },
            _ => return Err(format!("{k:?} is not a table")),
        };
    }
    Ok(cur)
}

/// Parses one value off the front of `s`; returns it and the rest.
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    } else if let Some(mut rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Ok((Value::Array(items), r));
            }
            let (v, r) = parse_value(rest)?;
            items.push(v);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            } else if !rest.starts_with(']') {
                return Err(format!("expected ',' or ']' at {rest:?}"));
            }
        }
    } else if let Some(mut rest) = s.strip_prefix('{') {
        let mut table = BTreeMap::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok((Value::Table(table), r));
            }
            let eq = find_top_level_eq(rest).ok_or_else(|| format!("expected key = value at {rest:?}"))?;
            let key = parse_key(&rest[..eq])?;
            let (v, r) = parse_value(rest[eq + 1..].trim_start())?;
            if table.insert(key.clone(), v).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            } else if !rest.starts_with('}') {
                return Err(format!("expected ',' or '}}' at {rest:?}"));
            }
        }
    } else {
        // Bare scalar: runs to the next delimiter.
        let end = s.find([',', ']', '}']).unwrap_or(s.len());
        let (tok, rest) = s.split_at(end);
        let tok = tok.trim();
        let v = if tok == "true" {
            Value::Bool(true)
        } else if tok == "false" {
            Value::Bool(false)
        } else if let Ok(i) = tok.replace('_', "").parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = tok.replace('_', "").parse::<f64>() {
            Value::Float(f)
        } else {
            return Err(format!("unrecognized value {tok:?}"));
        };
        Ok((v, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# a scenario
name = "demo"
n = 1_000
ratio = 0.75
on = true

[groups.victims]
nodes = [1, 2, 3]

[[phase]]
name = "one"
inline = { p = 0.8, extra_ms = 50 }

[[phase]]
name = "two"
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("n").unwrap().as_int(), Some(1000));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.75));
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
        let victims = v.get("groups").unwrap().get("victims").unwrap();
        assert_eq!(
            victims.get("nodes").unwrap().as_array().unwrap().len(),
            3
        );
        let phases = v.get("phase").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("one"));
        assert_eq!(
            phases[0].get("inline").unwrap().get("p").unwrap().as_f64(),
            Some(0.8)
        );
        assert_eq!(phases[1].get("name").unwrap().as_str(), Some("two"));
    }

    #[test]
    fn subtables_of_array_elements_attach_to_last_element() {
        let doc = r#"
[[phase]]
name = "a"
[phase.opts]
x = 1
[[phase]]
name = "b"
[phase.opts]
x = 2
"#;
        let v = parse(doc).unwrap();
        let phases = v.get("phase").unwrap().as_array().unwrap();
        assert_eq!(phases[0].get("opts").unwrap().get("x").unwrap().as_int(), Some(1));
        assert_eq!(phases[1].get("opts").unwrap().get("x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let doc = "xs = [\n 1, # one\n 2,\n 3\n]\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a line").is_err());
        assert!(parse("x = ").is_err());
        assert!(parse("x = \"unterminated").is_err());
        assert!(parse("x = [1, 2").is_err());
        assert!(parse("x = 1\nx = 2").is_err());
        assert!(parse("x = {p}").is_err());
    }

    #[test]
    fn strings_keep_hashes_and_escapes() {
        let v = parse("s = \"a # not comment \\\"q\\\"\"\n").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a # not comment \"q\""));
    }
}
