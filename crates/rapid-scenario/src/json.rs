//! A minimal, deterministic JSON writer.
//!
//! Reports must serialize to *byte-identical* JSON across runs of the same
//! seed (the golden tests pin this), so the writer emits keys in exactly
//! the order the caller supplies them and formats floats via Rust's
//! shortest-roundtrip `Display` — no external serializer, no map ordering
//! surprises.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counters never grow a
    /// `.0` suffix).
    Int(i64),
    /// A finite float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `Json::Int` from any unsigned counter.
    pub fn uint(v: u64) -> Json {
        Json::Int(v as i64)
    }

    /// `Json::Null` for `None`, else the mapped value.
    pub fn opt<T>(v: Option<T>, f: impl FnOnce(T) -> Json) -> Json {
        v.map_or(Json::Null, f)
    }

    /// Serializes with `indent`-space pretty printing.
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`to_string` comes via `Display`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let v = Json::obj(vec![
            ("name", Json::Str("s\"1\"".into())),
            ("n", Json::Int(200)),
            ("ratio", Json::Float(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Array(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"s\"1\"","n":200,"ratio":0.5,"ok":true,"none":null,"xs":[1,2]}"#
        );
        assert!(v.to_pretty(2).contains("\n  \"n\": 200"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = Json::obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn control_chars_escape() {
        let v = Json::Str("\u{1}x".into());
        assert_eq!(v.to_string(), "\"\\u0001x\"");
    }
}
