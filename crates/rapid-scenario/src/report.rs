//! Structured scenario results.
//!
//! A [`Report`] is everything a scenario run measured: per-phase
//! convergence instants, expectation verdicts, view-change counts, and
//! traffic deltas. Serialization is deterministic (field order fixed, no
//! timestamps, no float formatting surprises), so two runs of the same
//! seed on the same driver produce byte-identical JSON — the golden tests
//! pin exactly that.

use rapid_core::obs::TimelinePoint;

use crate::json::Json;
use crate::world::TrafficTotals;

/// Verdict of one expectation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpectReport {
    /// Human-readable label (`converge(n-victims) within 300000ms`).
    pub desc: String,
    /// `Some(true)`/`Some(false)` = evaluated; `None` = the driver does
    /// not support this expectation (skipped, does not fail the run).
    pub passed: Option<bool>,
}

/// KV data-plane measurements of one phase (present only when the
/// scenario carries a `[kv]` table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvPhaseReport {
    /// Writes attempted by this phase's `put` workloads.
    pub puts: u64,
    /// Writes acknowledged (fully replicated).
    pub acked: u64,
    /// View changes the data plane has rebalanced over (cumulative).
    pub rebalances: u64,
    /// Handoff bytes pushed so far (cumulative).
    pub bytes_moved: u64,
    /// Partitions whose whole replica set vanished at once (cumulative).
    pub partitions_lost: u64,
    /// Anti-entropy pulls triggered so far (cumulative).
    pub repairs: u64,
    /// Anti-entropy push bytes served so far (cumulative).
    pub repair_bytes: u64,
    /// Logical data-plane messages emitted so far (cumulative).
    pub msgs_sent: u64,
    /// Wire frames emitted so far (cumulative; `<= msgs_sent` — the gap
    /// is the per-peer batching win).
    pub frames_sent: u64,
    /// Encoded data-plane wire bytes emitted so far (cumulative).
    pub wire_bytes: u64,
    /// Remote ops shed by admission control so far (cumulative, typed
    /// overload errors — never silent drops).
    pub shed: u64,
    /// Smart-client plane measurements, present only when ops were
    /// submitted through view-subscribed clients.
    pub client: Option<KvClientPhase>,
}

impl KvPhaseReport {
    /// Mean logical messages per emitted wire frame, in thousandths
    /// (3500 = 3.5 msgs/frame) so report JSON stays float-free and
    /// byte-stable. 0 when nothing was sent.
    pub fn msgs_per_frame_milli(&self) -> u64 {
        (self.msgs_sent * 1000).checked_div(self.frames_sent).unwrap_or(0)
    }
}

/// Client-observed measurements of the smart-client plane (cumulative
/// across a run; integer-only so report JSON stays byte-stable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvClientPhase {
    /// Ops submitted through clients so far.
    pub submitted: u64,
    /// Ops completed with a server answer (acked writes + resolved
    /// reads) so far.
    pub completed: u64,
    /// Ops that failed at their client deadline so far.
    pub failed: u64,
    /// Typed overload verdicts clients received so far (each backs the
    /// op off and re-queues it).
    pub shed: u64,
    /// Op re-sends after retryable verdicts so far.
    pub retries: u64,
    /// Data-plane messages clients put on the wire so far.
    pub msgs_sent: u64,
    /// Client-observed op-latency p50 (histogram bucket bound, ms).
    pub p50_ms: u64,
    /// Client-observed op-latency p99 (ms).
    pub p99_ms: u64,
    /// Client-observed op-latency p99.9 (ms).
    pub p999_ms: u64,
}

impl KvClientPhase {
    /// Mean client wire messages per completed op, in thousandths (2000
    /// = 2 msgs/op: request + response) — the zero-hop routing headline.
    /// 0 when nothing completed.
    pub fn msgs_per_op_milli(&self) -> u64 {
        (self.msgs_sent * 1000).checked_div(self.completed).unwrap_or(0)
    }
}

/// View-change convergence of one phase's fault injection: how long each
/// live process took from the (first) injection instant to its final
/// view install of the phase. Present only on sim-driver phases that
/// inject at least one fault — unchanged scenarios and the real driver
/// keep their exact prior report bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// Driver time of the phase's first fault injection.
    pub fault_at_ms: u64,
    /// Per-live-process `last view install − fault_at_ms`, sorted
    /// ascending (processes whose view predates the fault are excluded).
    pub samples: Vec<u64>,
    /// Histogram p50 of the samples (log-bucket upper bound, ms).
    pub p50: u64,
    /// Histogram p99 of the samples (ms).
    pub p99: u64,
    /// Exact maximum sample — the paper's headline metric: when the
    /// *last* process installed the agreed view.
    pub max: u64,
}

/// Cluster-aggregated metrics timeline of one phase: one row per sample
/// instant inside the phase window, counters summed and interval
/// quantiles maxed across processes. Present only when the scenario
/// samples (`obs_sample_ms > 0`) — every prior report keeps its exact
/// bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineReport {
    /// Sampling cadence the run used.
    pub sample_ms: u64,
    /// Samples lost cluster-wide to bounded rings wrapping (cumulative,
    /// not per-phase — a nonzero value means early points are gone).
    pub dropped: u64,
    /// Aggregated interval-delta rows, in time order.
    pub series: Vec<TimelinePoint>,
}

impl TimelineReport {
    /// Aggregates per-process points (already `(t, process)`-sorted)
    /// that fall inside `[start_ms, end_ms]` into one row per instant.
    pub fn aggregate(
        points: &[(u64, usize, TimelinePoint)],
        start_ms: u64,
        end_ms: u64,
        sample_ms: u64,
        dropped: u64,
    ) -> TimelineReport {
        let mut series: Vec<TimelinePoint> = Vec::new();
        for &(t, _, ref p) in points {
            if t < start_ms || t > end_ms {
                continue;
            }
            match series.last_mut() {
                Some(row) if row.t_ms == t => row.absorb(p),
                _ => series.push(*p),
            }
        }
        TimelineReport {
            sample_ms,
            dropped,
            series,
        }
    }
}

/// Results of one phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Driver time when the phase began.
    pub start_ms: u64,
    /// Driver time when the phase ended.
    pub end_ms: u64,
    /// Absolute instant the first `converge` expectation held, if any.
    pub converged_at_ms: Option<u64>,
    /// View changes installed so far (cumulative), where the driver
    /// tracks them.
    pub view_changes: Option<u64>,
    /// Traffic during this phase, where the driver meters it.
    pub traffic: Option<TrafficTotals>,
    /// KV data-plane measurements, where hosted.
    pub kv: Option<KvPhaseReport>,
    /// Fault→view-install convergence samples, where tracked (sim
    /// driver, phases with at least one fault inject).
    pub convergence: Option<ConvergenceReport>,
    /// Cluster-aggregated metrics timeline of this phase's window,
    /// where sampled (`obs_sample_ms > 0`).
    pub timeline: Option<TimelineReport>,
    /// Flight-recorder tail captured when an expectation in this phase
    /// failed: the last N merged trace JSONL lines. Deliberately NOT
    /// part of the JSON report (diagnostics go to stderr; report bytes
    /// stay comparable across passing and failing runs' shapes).
    pub failure_dump: Vec<String>,
    /// Expectation verdicts, in scenario order.
    pub expects: Vec<ExpectReport>,
}

/// A complete scenario result.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Driver label (`sim:rapid`, `real:rapid`, ...).
    pub driver: String,
    /// Cluster size the run used.
    pub n: usize,
    /// Seed the run used.
    pub seed: u64,
    /// Whether every evaluated expectation passed.
    pub passed: bool,
    /// Per-phase results.
    pub phases: Vec<PhaseReport>,
}

impl Report {
    /// Whether any expectation was evaluated and failed.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.phases {
            for e in &p.expects {
                if e.passed == Some(false) {
                    out.push(format!("{}: {}", p.name, e.desc));
                }
            }
        }
        out
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("driver", Json::Str(self.driver.clone())),
            ("n", Json::uint(self.n as u64)),
            ("seed", Json::uint(self.seed)),
            ("passed", Json::Bool(self.passed)),
            (
                "phases",
                Json::Array(self.phases.iter().map(phase_json).collect()),
            ),
        ])
    }

    /// Compact JSON string (byte-stable across runs of one seed).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

fn phase_json(p: &PhaseReport) -> Json {
    let mut fields = vec![
        ("name", Json::Str(p.name.clone())),
        ("start_ms", Json::uint(p.start_ms)),
        ("end_ms", Json::uint(p.end_ms)),
        (
            "converged_at_ms",
            Json::opt(p.converged_at_ms, Json::uint),
        ),
        ("view_changes", Json::opt(p.view_changes, Json::uint)),
        (
            "traffic",
            Json::opt(p.traffic, |t| {
                Json::obj(vec![
                    ("bytes_in", Json::uint(t.bytes_in)),
                    ("bytes_out", Json::uint(t.bytes_out)),
                    ("msgs_in", Json::uint(t.msgs_in)),
                    ("msgs_out", Json::uint(t.msgs_out)),
                ])
            }),
        ),
    ];
    // The kv object appears only on KV-hosting runs, so reports of
    // membership-only scenarios keep their exact pre-KV shape.
    if let Some(kv) = p.kv {
        let mut kv_fields = vec![
            ("puts", Json::uint(kv.puts)),
            ("acked", Json::uint(kv.acked)),
            ("rebalances", Json::uint(kv.rebalances)),
            ("bytes_moved", Json::uint(kv.bytes_moved)),
            ("partitions_lost", Json::uint(kv.partitions_lost)),
            ("repairs", Json::uint(kv.repairs)),
            ("repair_bytes", Json::uint(kv.repair_bytes)),
            ("msgs_sent", Json::uint(kv.msgs_sent)),
            ("frames_sent", Json::uint(kv.frames_sent)),
            ("wire_bytes", Json::uint(kv.wire_bytes)),
            ("msgs_per_frame_milli", Json::uint(kv.msgs_per_frame_milli())),
            ("shed", Json::uint(kv.shed)),
        ];
        // The client object appears only on smart-client submissions, so
        // coordinator-mode runs keep their exact pre-client shape.
        if let Some(c) = kv.client {
            kv_fields.push((
                "client",
                Json::obj(vec![
                    ("submitted", Json::uint(c.submitted)),
                    ("completed", Json::uint(c.completed)),
                    ("failed", Json::uint(c.failed)),
                    ("shed", Json::uint(c.shed)),
                    ("retries", Json::uint(c.retries)),
                    ("msgs_sent", Json::uint(c.msgs_sent)),
                    ("msgs_per_op_milli", Json::uint(c.msgs_per_op_milli())),
                    ("p50_ms", Json::uint(c.p50_ms)),
                    ("p99_ms", Json::uint(c.p99_ms)),
                    ("p999_ms", Json::uint(c.p999_ms)),
                ]),
            ));
        }
        fields.push(("kv", Json::obj(kv_fields)));
    }
    // Convergence samples appear only when a phase injected faults on a
    // driver that tracks per-process view installs; every other phase —
    // and every pre-existing scenario without injects — keeps its exact
    // prior shape. `failure_dump` never serializes (stderr-only).
    if let Some(c) = &p.convergence {
        fields.push((
            "convergence",
            Json::obj(vec![
                ("fault_at_ms", Json::uint(c.fault_at_ms)),
                (
                    "samples",
                    Json::Array(c.samples.iter().map(|&s| Json::uint(s)).collect()),
                ),
                ("p50", Json::uint(c.p50)),
                ("p99", Json::uint(c.p99)),
                ("max", Json::uint(c.max)),
            ]),
        ));
    }
    // The timeline object appears only when the run sampled
    // (obs_sample_ms > 0): reports of non-sampling runs keep their
    // exact prior bytes.
    if let Some(tl) = &p.timeline {
        fields.push((
            "timeline",
            Json::obj(vec![
                ("sample_ms", Json::uint(tl.sample_ms)),
                ("dropped", Json::uint(tl.dropped)),
                (
                    "series",
                    Json::Array(
                        tl.series
                            .iter()
                            .map(|pt| {
                                Json::obj(vec![
                                    ("t", Json::uint(pt.t_ms)),
                                    ("msgs", Json::uint(pt.msgs)),
                                    ("bytes", Json::uint(pt.bytes)),
                                    ("alerts", Json::uint(pt.alerts)),
                                    ("view_changes", Json::uint(pt.view_changes)),
                                    ("ops", Json::uint(pt.ops)),
                                    ("handoff_bytes", Json::uint(pt.handoff_bytes)),
                                    ("repair_bytes", Json::uint(pt.repair_bytes)),
                                    ("p50_ms", Json::uint(pt.p50_ms)),
                                    ("p99_ms", Json::uint(pt.p99_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    fields.extend([
        (
            "expects",
            Json::Array(
                p.expects
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("desc", Json::Str(e.desc.clone())),
                            ("passed", Json::opt(e.passed, Json::Bool)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_stable_and_complete() {
        let r = Report {
            scenario: "demo".into(),
            driver: "sim:rapid".into(),
            n: 50,
            seed: 7,
            passed: true,
            phases: vec![PhaseReport {
                name: "boot".into(),
                start_ms: 0,
                end_ms: 42_000,
                converged_at_ms: Some(41_000),
                view_changes: Some(3),
                traffic: Some(TrafficTotals {
                    bytes_in: 10,
                    bytes_out: 20,
                    msgs_in: 1,
                    msgs_out: 2,
                }),
                kv: Some(KvPhaseReport {
                    puts: 4,
                    acked: 4,
                    rebalances: 1,
                    bytes_moved: 128,
                    partitions_lost: 0,
                    repairs: 2,
                    repair_bytes: 64,
                    msgs_sent: 21,
                    frames_sent: 6,
                    wire_bytes: 512,
                    shed: 1,
                    client: Some(KvClientPhase {
                        submitted: 4,
                        completed: 4,
                        failed: 0,
                        shed: 1,
                        retries: 1,
                        msgs_sent: 9,
                        p50_ms: 3,
                        p99_ms: 7,
                        p999_ms: 7,
                    }),
                }),
                convergence: Some(ConvergenceReport {
                    fault_at_ms: 5_000,
                    samples: vec![1_800, 2_000, 2_400],
                    p50: 2_047,
                    p99: 2_559,
                    max: 2_400,
                }),
                timeline: Some(TimelineReport {
                    sample_ms: 1_000,
                    dropped: 0,
                    series: vec![TimelinePoint {
                        t_ms: 1_000,
                        msgs: 12,
                        bytes: 640,
                        alerts: 1,
                        view_changes: 0,
                        ops: 4,
                        handoff_bytes: 128,
                        repair_bytes: 0,
                        p50_ms: 3,
                        p99_ms: 7,
                    }],
                }),
                failure_dump: Vec::new(),
                expects: vec![
                    ExpectReport { desc: "converge(n)".into(), passed: Some(true) },
                    ExpectReport { desc: "histories".into(), passed: None },
                ],
            }],
        };
        let s = r.to_json_string();
        assert_eq!(s, r.to_json_string(), "serialization must be stable");
        assert!(s.starts_with(r#"{"scenario":"demo","driver":"sim:rapid","n":50,"seed":7,"passed":true"#));
        assert!(s.contains(r#""converged_at_ms":41000"#));
        assert!(s.contains(r#""passed":null"#));
        assert!(s.contains(r#""convergence":{"fault_at_ms":5000,"samples":[1800,2000,2400],"p50":2047,"p99":2559,"max":2400}"#));
        assert!(s.contains(
            r#""timeline":{"sample_ms":1000,"dropped":0,"series":[{"t":1000,"msgs":12,"bytes":640,"alerts":1,"view_changes":0,"ops":4,"handoff_bytes":128,"repair_bytes":0,"p50_ms":3,"p99_ms":7}]}"#
        ));
        assert!(s.contains(
            r#""shed":1,"client":{"submitted":4,"completed":4,"failed":0,"shed":1,"retries":1,"msgs_sent":9,"msgs_per_op_milli":2250,"p50_ms":3,"p99_ms":7,"p999_ms":7}"#
        ));
        assert!(r.failures().is_empty());
    }

    #[test]
    fn failures_list_failed_expectations() {
        let r = Report {
            scenario: "x".into(),
            driver: "d".into(),
            n: 1,
            seed: 1,
            passed: false,
            phases: vec![PhaseReport {
                name: "p".into(),
                start_ms: 0,
                end_ms: 1,
                converged_at_ms: None,
                view_changes: None,
                traffic: None,
                kv: None,
                convergence: None,
                timeline: None,
                failure_dump: Vec::new(),
                expects: vec![ExpectReport { desc: "boom".into(), passed: Some(false) }],
            }],
        };
        assert_eq!(r.failures(), vec!["p: boom"]);
    }
}
