//! # rapid-scenario
//!
//! Declarative chaos/workload orchestration over the Rapid reproduction.
//!
//! The paper's core claim is *stability under messy, directional failure
//! scenarios* — flip-flopping members, asymmetric `iptables` drops,
//! packet blackholes. This crate turns such experiments from bespoke
//! binaries into data:
//!
//! * [`model`] — the scenario language: node groups, a timeline of
//!   phases, each phase a set of fault injections, workload actions, and
//!   expectations. Built in code ([`Scenario::build`]) or loaded from
//!   TOML ([`Scenario::from_toml`]; shipped examples live in
//!   `scenarios/`).
//! * [`driver`] — one [`Driver`] trait, two backends: the deterministic
//!   simulator ([`SimDriver`], hosting Rapid and every baseline) and a
//!   real multi-threaded TCP cluster ([`RealDriver`]).
//! * [`runner`] — deterministic execution: same scenario + same seed +
//!   sim driver ⇒ byte-identical [`Report`] JSON.
//! * [`world`] — the multi-system simulated deployment harness (moved
//!   here from `bench`, which re-exports it).
//!
//! See `docs/SCENARIOS.md` for the schema and driver caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod json;
pub mod load;
pub mod model;
pub mod report;
pub mod runner;
pub mod toml;
pub mod world;

pub use driver::{Driver, RealDriver, SimDriver};
pub use model::{
    Expect, FaultSpec, Group, Inject, KvSpec, Phase, Repeat, Scenario, SettingsPatch, SizeExpr,
    Target, Topology, Workload, WorkloadAction,
};
pub use report::{ConvergenceReport, ExpectReport, KvPhaseReport, PhaseReport, Report};
pub use world::{aggregate_timeseries, KvOp, KvWorld, SystemKind, TrafficTotals, World};
