//! Executes a [`Scenario`] against a [`Driver`] and produces a
//! [`Report`].
//!
//! The execution discipline per phase is fixed, so the same scenario is
//! comparable across drivers and runs:
//!
//! 1. All fault injections are scheduled up front at
//!    `phase_start + at_ms` (repeats expanded), mirroring how the
//!    original experiment binaries pre-scheduled their fault timelines —
//!    which keeps ported scenarios event-for-event identical to them.
//! 2. Workloads run at their offsets (time advances to each).
//! 3. If `run_ms` is set, time advances to `phase_start + run_ms`.
//! 4. Expectations evaluate in order; `converge` advances time itself.

use rapid_core::hash::{DetHashMap, StableHasher};
use rapid_core::obs::LatencyHist;
use rapid_core::rng::Xoshiro256;
use rapid_route::KvOutcome;
use rapid_sim::Fault;

use crate::driver::{Driver, ResolvedWorkload};
use crate::model::{Expect, FaultSpec, Inject, KeyDist, Phase, Scenario, WorkloadAction};
use crate::report::{
    ConvergenceReport, ExpectReport, KvClientPhase, KvPhaseReport, PhaseReport, Report,
    TimelineReport,
};
use crate::world::KvOp;

/// How many trailing trace lines a failed expectation dumps.
const FAILURE_DUMP_TAIL: usize = 64;

/// The client-side record of every acknowledged write: key → latest
/// acked `(value, version)`. The `no_lost_acked_writes` expectation is
/// exactly "every entry here reads back at `>=` its acked version".
#[derive(Default)]
struct KvLedger {
    acked: DetHashMap<String, (String, u64)>,
    /// Monotone value counter, so repeated `put` workloads overwrite
    /// keys with distinguishable fresh values.
    seq: u64,
}

/// How a ledger sweep judges a read.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepKind {
    /// `kv_available`: the key must read back `Found`.
    Available,
    /// `no_lost_acked_writes`: the key must read back `Found` at a
    /// version at least as new as the last acked write (an equal version
    /// must carry the acked value).
    Durability,
}

/// Sweeps every acked key through the driver, retrying transient
/// failures (rebalance windows) a bounded number of times. Returns
/// `(total, failed_keys)`.
fn sweep_ledger(
    ledger: &KvLedger,
    driver: &mut dyn Driver,
    kind: SweepKind,
) -> Result<(usize, Vec<String>), String> {
    let mut pending: Vec<String> = ledger.acked.keys().cloned().collect();
    pending.sort();
    let total = pending.len();
    for _attempt in 0..3 {
        if pending.is_empty() {
            break;
        }
        let ops: Vec<KvOp> = pending
            .iter()
            .map(|k| KvOp {
                key: k.clone(),
                put_val: None,
            })
            .collect();
        let outcomes = driver
            .kv_batch(None, &ops)
            .map_err(|e| format!("kv sweep: {e}"))?;
        let mut still = Vec::new();
        for (key, outcome) in pending.into_iter().zip(outcomes) {
            let ok = match (&outcome, kind) {
                (KvOutcome::Found { .. }, SweepKind::Available) => true,
                (KvOutcome::Found { val, version }, SweepKind::Durability) => {
                    let (acked_val, acked_ver) = &ledger.acked[&key];
                    *version > *acked_ver || (*version == *acked_ver && val == acked_val)
                }
                _ => false,
            };
            if !ok {
                still.push(key);
            }
        }
        pending = still;
    }
    Ok((total, pending))
}

/// Expands one injection into concrete `(at_ms, Fault)` pairs (absolute
/// driver times), resolving group targets.
fn expand_inject(
    scenario: &Scenario,
    phase_start: u64,
    inject: &Inject,
) -> Result<Vec<(u64, Fault)>, String> {
    let times: Vec<u64> = match inject.repeat {
        None => vec![phase_start + inject.at_ms],
        Some(r) => (0..r.count as u64)
            .map(|k| phase_start + inject.at_ms + k * r.period_ms)
            .collect(),
    };
    let per_fire: Vec<Fault> = match &inject.fault {
        FaultSpec::Crash(t) => scenario
            .resolve_target(t)?
            .into_iter()
            .map(Fault::Crash)
            .collect(),
        FaultSpec::IngressDrop(t, p) => scenario
            .resolve_target(t)?
            .into_iter()
            .map(|i| Fault::IngressDrop(i, *p))
            .collect(),
        FaultSpec::EgressDrop(t, p) => scenario
            .resolve_target(t)?
            .into_iter()
            .map(|i| Fault::EgressDrop(i, *p))
            .collect(),
        FaultSpec::Partition(t) => vec![Fault::Partition(scenario.resolve_target(t)?)],
        FaultSpec::BlackholePair(a, b) => vec![Fault::BlackholePair(*a, *b)],
        FaultSpec::ClearBlackholePair(a, b) => vec![Fault::ClearBlackholePair(*a, *b)],
        FaultSpec::LinkLoss(a, b, p) => vec![Fault::LinkLoss(*a, *b, *p)],
        FaultSpec::SlowNode(t, f) => scenario
            .resolve_target(t)?
            .into_iter()
            .map(|i| Fault::SlowNode(i, *f))
            .collect(),
        FaultSpec::Duplicate(p) => vec![Fault::Duplicate(*p)],
        FaultSpec::Reorder(p, extra) => vec![Fault::Reorder(*p, *extra)],
        FaultSpec::Latency(d) => vec![Fault::Latency(*d)],
    };
    let mut out = Vec::with_capacity(times.len() * per_fire.len());
    for t in times {
        for f in &per_fire {
            out.push((t, f.clone()));
        }
    }
    Ok(out)
}

/// The key sequence of one `put` workload. Sequential sweeps write each
/// key of the `count`-key space once, in order; zipfian draws `count`
/// samples over the same space by inverse-CDF over weights `1/(k+1)^s`,
/// seeded from `(scenario seed, ledger position)` so every workload
/// invocation draws its own reproducible stream on both drivers.
fn draw_keys(dist: KeyDist, count: usize, seed: u64, seq: u64) -> Vec<String> {
    if count == 0 {
        return Vec::new();
    }
    match dist {
        KeyDist::Sequential => (0..count).map(|i| format!("kv-{i:05}")).collect(),
        KeyDist::Zipfian { s } => {
            let mut cdf = Vec::with_capacity(count);
            let mut total = 0.0f64;
            for k in 0..count {
                total += 1.0 / ((k + 1) as f64).powf(s);
                cdf.push(total);
            }
            let mut rng = Xoshiro256::seed_from_u64(
                StableHasher::new("kv-zipf-keys")
                    .write_u64(seed)
                    .write_u64(seq)
                    .finish(),
            );
            (0..count)
                .map(|_| {
                    let u = rng.gen_f64() * total;
                    let rank = cdf.partition_point(|&c| c < u).min(count - 1);
                    format!("kv-{rank:05}")
                })
                .collect()
        }
    }
}

fn run_phase(
    scenario: &Scenario,
    phase: &Phase,
    driver: &mut dyn Driver,
    ledger: &mut KvLedger,
) -> Result<PhaseReport, String> {
    let start = driver.now_ms();
    let traffic_before = driver.traffic_totals();
    let mut kv_puts = 0u64;
    let mut kv_acked = 0u64;

    // 1. Schedule every injection up front. The earliest firing is the
    // phase's convergence-latency origin (fault → last view install).
    let mut fault_at: Option<u64> = None;
    for inject in &phase.injects {
        for (at, fault) in expand_inject(scenario, start, inject)? {
            fault_at = Some(fault_at.map_or(at, |f| f.min(at)));
            driver
                .schedule_fault(at, fault)
                .map_err(|e| format!("phase {:?}: {e}", phase.name))?;
        }
    }

    // 2. Workloads at their offsets (stable-sorted: time cannot run
    // backwards to honor a later-declared, earlier-offset action).
    let mut workloads: Vec<_> = phase.workloads.iter().collect();
    workloads.sort_by_key(|w| w.at_ms);
    for w in workloads {
        let due = start + w.at_ms;
        if driver.now_ms() < due {
            driver.run_until(due);
        }
        let resolved = match &w.action {
            WorkloadAction::Join { count } => ResolvedWorkload::Join(*count),
            WorkloadAction::Leave(t) => ResolvedWorkload::Leave(scenario.resolve_target(t)?),
            WorkloadAction::Put {
                count,
                via,
                value_size,
                key_dist,
            } => {
                // Pad values to the workload's (or the [kv] table's)
                // value_size so data-motion metrics measure real bytes,
                // not 7-byte toys. The seq prefix keeps every written
                // value distinguishable for the durability sweep.
                let min_len = value_size
                    .or_else(|| {
                        scenario
                            .kv
                            .map(|k| k.value_size)
                            .filter(|&s| s > 0)
                    })
                    .unwrap_or(0);
                let keys = draw_keys(*key_dist, *count, scenario.seed, ledger.seq);
                let ops: Vec<KvOp> = keys
                    .into_iter()
                    .map(|key| {
                        ledger.seq += 1;
                        let mut val = format!("v{:06}", ledger.seq);
                        while val.len() < min_len {
                            val.push('x');
                        }
                        KvOp {
                            key,
                            put_val: Some(val),
                        }
                    })
                    .collect();
                let outcomes = driver
                    .kv_batch(*via, &ops)
                    .map_err(|e| format!("phase {:?}: {e}", phase.name))?;
                kv_puts += ops.len() as u64;
                for (op, outcome) in ops.into_iter().zip(outcomes) {
                    if let KvOutcome::Acked { version } = outcome {
                        kv_acked += 1;
                        ledger
                            .acked
                            .insert(op.key, (op.put_val.expect("puts carry values"), version));
                    }
                }
                continue;
            }
        };
        driver
            .apply_workload(&resolved)
            .map_err(|e| format!("phase {:?}: {e}", phase.name))?;
    }

    // 3. Fixed run window.
    if let Some(run_ms) = phase.run_ms {
        driver.run_until(start + run_ms);
    }

    // 4. Expectations.
    let mut expects = Vec::new();
    let mut converged_at_ms = None;
    for e in &phase.expects {
        let report = match e {
            Expect::Converge { to, within_ms, .. } => {
                let target = to.resolve(scenario)?;
                let at = driver.converge(target, *within_ms);
                if converged_at_ms.is_none() {
                    converged_at_ms = at;
                }
                ExpectReport {
                    desc: format!("converge({}={target}) within {within_ms}ms", to.describe()),
                    passed: Some(at.is_some()),
                }
            }
            Expect::AllReport(size) => {
                let target = size.resolve(scenario)?;
                let ok = crate::world::obs_all_report(&driver.observations(), target);
                ExpectReport {
                    desc: format!("all_report({}={target})", size.describe()),
                    passed: Some(ok),
                }
            }
            Expect::MaxSize(size) => {
                let target = size.resolve(scenario)?;
                let ok = driver
                    .observations()
                    .into_iter()
                    .flatten()
                    .all(|v| v <= target as f64 + 0.5);
                ExpectReport {
                    desc: format!("max_size({}={target})", size.describe()),
                    passed: Some(ok),
                }
            }
            Expect::ConsistentHistories => ExpectReport {
                desc: "consistent_histories".to_string(),
                passed: driver.consistent_histories(),
            },
            Expect::KvAvailable => {
                let (total, failed) = sweep_ledger(ledger, driver, SweepKind::Available)
                    .map_err(|err| format!("phase {:?}: {err}", phase.name))?;
                ExpectReport {
                    desc: format!("kv_available({total} acked keys)"),
                    passed: Some(failed.is_empty()),
                }
            }
            Expect::NoLostAckedWrites => {
                let (total, failed) = sweep_ledger(ledger, driver, SweepKind::Durability)
                    .map_err(|err| format!("phase {:?}: {err}", phase.name))?;
                ExpectReport {
                    desc: format!("no_lost_acked_writes({total} acked keys)"),
                    passed: Some(failed.is_empty()),
                }
            }
            Expect::KvConverged { within_ms } => ExpectReport {
                desc: format!("kv_converged within {within_ms}ms"),
                passed: driver.kv_converged(*within_ms),
            },
            Expect::ShedObserved { min } => ExpectReport {
                desc: format!("shed_observed(min={min})"),
                passed: driver.kv_stats().map(|s| s.ops_shed >= *min),
            },
            Expect::OpsRecover {
                within_samples,
                min_ops,
            } => {
                // Fold the merged per-node series into per-bucket cluster
                // op counts, then ask whether any of the trailing
                // `within_samples` buckets carried at least `min_ops` —
                // i.e. throughput came back after the overload burst.
                let mut per_bucket: DetHashMap<u64, u64> = DetHashMap::default();
                for (_, _, p) in driver.timeline_points() {
                    *per_bucket.entry(p.t_ms).or_insert(0) += p.ops;
                }
                let mut buckets: Vec<(u64, u64)> = per_bucket.into_iter().collect();
                buckets.sort_unstable();
                let tail = buckets.len().saturating_sub(*within_samples);
                let recovered = buckets[tail..].iter().any(|&(_, ops)| ops >= *min_ops);
                ExpectReport {
                    desc: format!("ops_recover(within_samples={within_samples}, min_ops={min_ops})"),
                    passed: if buckets.is_empty() {
                        None
                    } else {
                        Some(recovered)
                    },
                }
            }
        };
        expects.push(report);
    }

    let end = driver.now_ms();
    let traffic = match (traffic_before, driver.traffic_totals()) {
        (Some(a), Some(b)) => Some(b - a),
        _ => None,
    };
    let kv = driver.kv_stats().map(|stats| KvPhaseReport {
        puts: kv_puts,
        acked: kv_acked,
        rebalances: stats.rebalances,
        bytes_moved: stats.bytes_moved,
        partitions_lost: stats.partitions_lost,
        repairs: stats.repairs_triggered,
        repair_bytes: stats.repair_bytes,
        msgs_sent: stats.msgs_sent,
        frames_sent: stats.frames_sent,
        wire_bytes: stats.wire_bytes,
        shed: stats.ops_shed,
        client: driver.kv_client_stats().map(|(cs, hist)| KvClientPhase {
            submitted: cs.submitted,
            completed: cs.acked + cs.found + cs.missing,
            failed: cs.failed,
            shed: cs.shed,
            retries: cs.retries,
            msgs_sent: cs.msgs_sent,
            p50_ms: hist.quantile_ppm(500_000),
            p99_ms: hist.quantile_ppm(990_000),
            p999_ms: hist.quantile_ppm(999_000),
        }),
    });
    // Convergence-latency samples: for each live process, how long after
    // the phase's first fault injection its final view install landed.
    // Installs predating the fault (e.g. bootstrap's) are excluded.
    let convergence = match (fault_at, driver.view_install_times()) {
        (Some(fault_at_ms), Some(installs)) => {
            let mut samples: Vec<u64> = installs
                .into_iter()
                .filter(|&t| t >= fault_at_ms)
                .map(|t| t - fault_at_ms)
                .collect();
            samples.sort_unstable();
            if samples.is_empty() {
                None
            } else {
                let mut hist = LatencyHist::new();
                for &s in &samples {
                    hist.record(s);
                }
                Some(ConvergenceReport {
                    fault_at_ms,
                    p50: hist.quantile_ppm(500_000),
                    p99: hist.quantile_ppm(990_000),
                    max: *samples.last().expect("non-empty"),
                    samples,
                })
            }
        }
        _ => None,
    };
    // Metrics plane: when sampling is on, fold this phase's window of the
    // merged per-node series into a cluster-wide timeline.
    let timeline = match scenario.settings.obs_sample_ms {
        Some(ms) if ms > 0 => Some(TimelineReport::aggregate(
            &driver.timeline_points(),
            start,
            end,
            ms,
            driver.obs_dropped(),
        )),
        _ => None,
    };
    // Flight recorder: a failed expectation dumps the tail of the merged
    // trace so the failure carries its causal history, not just a verdict.
    let failure_dump = if expects.iter().any(|e| e.passed == Some(false)) {
        let mut lines = driver.flight_dump();
        let keep = lines.len().saturating_sub(FAILURE_DUMP_TAIL);
        lines.drain(..keep);
        lines
    } else {
        Vec::new()
    };
    Ok(PhaseReport {
        name: phase.name.clone(),
        start_ms: start,
        end_ms: end,
        converged_at_ms,
        view_changes: driver.view_changes(),
        traffic,
        kv,
        convergence,
        timeline,
        failure_dump,
        expects,
    })
}

/// Every cluster-process index a fault touches, for validation.
fn fault_indices(scenario: &Scenario, fault: &FaultSpec) -> Result<Vec<usize>, String> {
    Ok(match fault {
        FaultSpec::Crash(t)
        | FaultSpec::IngressDrop(t, _)
        | FaultSpec::EgressDrop(t, _)
        | FaultSpec::Partition(t)
        | FaultSpec::SlowNode(t, _) => scenario.resolve_target(t)?,
        FaultSpec::BlackholePair(a, b) | FaultSpec::ClearBlackholePair(a, b) => vec![*a, *b],
        FaultSpec::LinkLoss(a, b, _) => vec![*a, *b],
        FaultSpec::Duplicate(_) | FaultSpec::Reorder(_, _) | FaultSpec::Latency(_) => Vec::new(),
    })
}

/// Fails fast on dangling group references and out-of-range indices —
/// including inline `nodes = [...]` targets, which would otherwise
/// surface as a mid-run panic (leave) or a silent no-op (crash).
fn validate(scenario: &Scenario) -> Result<(), String> {
    let check = |what: &str, idxs: &[usize]| -> Result<(), String> {
        if let Some(&bad) = idxs.iter().find(|&&i| i >= scenario.n) {
            return Err(format!(
                "{what} resolves to index {bad} outside 0..{}",
                scenario.n
            ));
        }
        Ok(())
    };
    for (name, g) in &scenario.groups {
        check(&format!("group {name:?}"), &g.resolve(scenario.n))?;
    }
    for phase in &scenario.phases {
        for inject in &phase.injects {
            check(
                &format!("phase {:?} inject", phase.name),
                &fault_indices(scenario, &inject.fault)?,
            )?;
        }
        for w in &phase.workloads {
            match &w.action {
                WorkloadAction::Leave(t) => check(
                    &format!("phase {:?} leave", phase.name),
                    &scenario.resolve_target(t)?,
                )?,
                WorkloadAction::Put { via, .. } => {
                    if scenario.kv.is_none() {
                        return Err(format!(
                            "phase {:?}: put workload requires a [kv] table on the scenario",
                            phase.name
                        ));
                    }
                    if let Some(i) = via {
                        check(&format!("phase {:?} put via", phase.name), &[*i])?;
                    }
                }
                WorkloadAction::Join { .. } => {}
            }
        }
        for e in &phase.expects {
            // Resolve size expressions now: a typo'd group name in a
            // late expectation must not abort a multi-minute run midway.
            if let Expect::Converge { to, .. } | Expect::AllReport(to) | Expect::MaxSize(to) = e {
                to.resolve(scenario)
                    .map_err(|err| format!("phase {:?} expect: {err}", phase.name))?;
            }
            if matches!(
                e,
                Expect::KvAvailable
                    | Expect::NoLostAckedWrites
                    | Expect::KvConverged { .. }
                    | Expect::ShedObserved { .. }
                    | Expect::OpsRecover { .. }
            ) && scenario.kv.is_none()
            {
                return Err(format!(
                    "phase {:?}: kv expectation requires a [kv] table on the scenario",
                    phase.name
                ));
            }
            if matches!(e, Expect::OpsRecover { .. })
                && scenario.settings.obs_sample_ms.is_none_or(|ms| ms == 0)
            {
                return Err(format!(
                    "phase {:?}: ops_recover requires obs_sample_ms > 0",
                    phase.name
                ));
            }
        }
    }
    if let (Some(shards), Some(kv)) = (scenario.settings.kv_shards, &scenario.kv) {
        if shards > kv.partitions as usize {
            return Err(format!(
                "kv_shards = {shards} exceeds the {} KV partitions; a shard with no \
                 partitions can never serve an op (lower kv_shards or raise partitions)",
                kv.partitions
            ));
        }
    }
    Ok(())
}

/// Runs a scenario to completion on a driver.
pub fn run(scenario: &Scenario, driver: &mut dyn Driver) -> Result<Report, String> {
    validate(scenario)?;
    let mut phases = Vec::new();
    let mut ledger = KvLedger::default();
    for phase in &scenario.phases {
        phases.push(run_phase(scenario, phase, driver, &mut ledger)?);
    }
    let passed = phases
        .iter()
        .flat_map(|p| &p.expects)
        .all(|e| e.passed != Some(false));
    Ok(Report {
        scenario: scenario.name.clone(),
        driver: driver.label(),
        n: scenario.n,
        seed: scenario.seed,
        passed,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SimDriver;
    use crate::model::{Group, Phase, SizeExpr, Target, Topology};
    use crate::world::SystemKind;

    fn crash_scenario() -> Scenario {
        Scenario::build("crash-three", 30)
            .seed(12)
            .topology(Topology::Static)
            .group("victims", Group::Nodes(vec![3, 17, 25]))
            .phase(Phase::new("steady").run_for(5_000).expect(Expect::AllReport(SizeExpr::n())))
            .phase(
                Phase::new("crash")
                    .inject(Inject::at(0, FaultSpec::Crash(Target::group("victims"))))
                    .expect(Expect::Converge {
                        to: SizeExpr::n_minus_group("victims"),
                        within_ms: 120_000,
                        within_full_ms: None,
                    })
                    .expect(Expect::ConsistentHistories),
            )
            .finish()
    }

    #[test]
    fn draw_keys_is_deterministic_and_skewed() {
        // Sequential is the exact legacy stream, untouched by seed or seq.
        let seq = draw_keys(KeyDist::Sequential, 3, 59, 7);
        assert_eq!(seq, vec!["kv-00000", "kv-00001", "kv-00002"]);

        // Same (seed, seq) reproduces the identical zipfian draw; a
        // different seq shifts it — each workload burst gets its own stream.
        let z = KeyDist::Zipfian { s: 1.2 };
        let a = draw_keys(z, 500, 59, 7);
        assert_eq!(a, draw_keys(z, 500, 59, 7));
        assert_ne!(a, draw_keys(z, 500, 59, 8));

        // All draws stay inside the rank space, and the head key dominates:
        // rank 0 must be the single most frequent key.
        let mut freq = DetHashMap::<String, usize>::default();
        for k in &a {
            assert!(k.as_str() >= "kv-00000" && k.as_str() < "kv-00500");
            *freq.entry(k.clone()).or_default() += 1;
        }
        let head = freq["kv-00000"];
        assert!(
            freq.iter().all(|(k, &n)| k == "kv-00000" || n <= head),
            "rank 0 should be the hottest key: {head} draws"
        );
        assert!(head >= 50, "s=1.2 head key should soak >10% of 500 draws, got {head}");
    }

    #[test]
    fn sim_run_produces_a_passing_report() {
        let s = crash_scenario();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        let report = run(&s, &mut driver).unwrap();
        assert!(report.passed, "failures: {:?}", report.failures());
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].start_ms, 0);
        assert_eq!(report.phases[0].end_ms, 5_000);
        assert!(report.phases[1].converged_at_ms.is_some());
        assert_eq!(report.phases[1].view_changes, Some(1), "one cut decision");
        let t = report.phases[1].traffic.unwrap();
        assert!(t.bytes_out > 0);
    }

    #[test]
    fn same_seed_same_report_json() {
        let s = crash_scenario();
        let run_once = || {
            let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
            run(&s, &mut driver).unwrap().to_json_string()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn failed_expectation_fails_the_report() {
        let s = Scenario::build("impossible", 10)
            .seed(3)
            .topology(Topology::Static)
            .phase(Phase::new("p").run_for(1_000).expect(Expect::AllReport(SizeExpr::abs(99))))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        let report = run(&s, &mut driver).unwrap();
        assert!(!report.passed);
        assert_eq!(report.failures().len(), 1);
    }

    #[test]
    fn out_of_range_groups_are_rejected() {
        let s = Scenario::build("bad", 5)
            .group("g", Group::Nodes(vec![7]))
            .phase(Phase::new("p"))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        assert!(run(&s, &mut driver).is_err());
    }

    #[test]
    fn out_of_range_inline_targets_are_rejected_up_front() {
        // Inline nodes never pass through a named group, so they need
        // their own validation — a leave at 99 would otherwise panic
        // mid-run, and a crash at 99 would silently do nothing.
        let crash = Scenario::build("bad-crash", 5)
            .topology(Topology::Static)
            .phase(Phase::new("p").inject(Inject::at(0, FaultSpec::Crash(Target::node(99)))))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &crash).unwrap();
        assert!(run(&crash, &mut driver).unwrap_err().contains("99"));

        let leave = Scenario::build("bad-leave", 5)
            .topology(Topology::Static)
            .phase(Phase::new("p").workload(0, crate::model::WorkloadAction::Leave(Target::node(99))))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &leave).unwrap();
        assert!(run(&leave, &mut driver).unwrap_err().contains("99"));

        let link = Scenario::build("bad-link", 5)
            .topology(Topology::Static)
            .phase(Phase::new("p").inject(Inject::at(0, FaultSpec::LinkLoss(0, 99, 0.5))))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &link).unwrap();
        assert!(run(&link, &mut driver).unwrap_err().contains("99"));
    }

    #[test]
    fn workloads_run_in_offset_order_not_declaration_order() {
        // A leave declared *after* a later-offset workload must still
        // fire at its own offset.
        let s = Scenario::build("order", 10)
            .seed(5)
            .topology(Topology::Static)
            .phase(
                Phase::new("p")
                    .workload(8_000, crate::model::WorkloadAction::Leave(Target::node(3)))
                    .workload(1_000, crate::model::WorkloadAction::Leave(Target::node(4)))
                    .run_for(10_000),
            )
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        run(&s, &mut driver).unwrap();
        let world = driver.world();
        assert_eq!(world.now(), 10_000);
        assert_eq!(world.observations().len(), 8, "both leavers terminated");
        // Node 4's departure was processed at t=1000, so the survivors'
        // first view change lands well before the t=8000 workload; under
        // declaration order both leaves would fire at 8000.
        let crate::world::World::Rapid(sim) = world else {
            unreachable!()
        };
        let first_view_at = sim.actor(0).log.views.first().map(|(t, _)| *t);
        assert!(
            first_view_at.is_some_and(|t| t < 8_000),
            "first view change must predate the later workload, got {first_view_at:?}"
        );
    }

    #[test]
    fn kv_scenario_survives_crashes_with_no_lost_acked_writes() {
        let s = Scenario::build("kv-crash", 8)
            .seed(41)
            .topology(Topology::Static)
            .kv(crate::model::KvSpec {
                partitions: 16,
                replication: 3,
                op_window_ms: 5_000,
                value_size: 64,
                ..crate::model::KvSpec::default()
            })
            .phase(
                Phase::new("load")
                    .workload(1_000, crate::model::WorkloadAction::Put { count: 20, via: None, value_size: None, key_dist: crate::model::KeyDist::Sequential })
                    .expect(Expect::KvAvailable),
            )
            .phase(
                Phase::new("crash")
                    .inject(Inject::at(0, FaultSpec::Crash(Target::Nodes(vec![2, 5]))))
                    .expect(Expect::Converge {
                        to: SizeExpr::n_minus(2),
                        within_ms: 120_000,
                        within_full_ms: None,
                    })
                    .expect(Expect::KvAvailable)
                    .expect(Expect::NoLostAckedWrites)
                    .expect(Expect::KvConverged { within_ms: 60_000 }),
            )
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        let report = run(&s, &mut driver).unwrap();
        assert!(report.passed, "failures: {:?}", report.failures());
        let load_kv = report.phases[0].kv.expect("kv metrics present");
        assert_eq!(load_kv.puts, 20);
        assert_eq!(load_kv.acked, 20, "healthy cluster must ack everything");
        let crash_kv = report.phases[1].kv.expect("kv metrics present");
        assert!(crash_kv.rebalances >= 1, "crash must trigger a rebalance");
        assert!(crash_kv.bytes_moved > 0, "rebalance must move data");
        assert_eq!(crash_kv.partitions_lost, 0, "RF=3 survives 2 crashes");
        // 20 keys padded to 64 bytes: a handoff of even one partition
        // outweighs the unpadded corpus, so the padding is visibly real.
        assert!(
            crash_kv.bytes_moved > 500,
            "value_size padding must show up in bytes_moved: {crash_kv:?}"
        );
        // The default submit mode drives everything through a smart
        // client, so client-observed metrics must be present and account
        // for at least the put workload.
        let client = load_kv.client.expect("client metrics present in client mode");
        assert!(client.submitted >= 20, "client saw the puts: {client:?}");
        assert!(client.completed >= 20, "client completed the puts: {client:?}");
        // The kv object must appear in the JSON, and runs are byte-stable.
        let json = report.to_json_string();
        assert!(json.contains("\"kv\":{\"puts\":20"), "kv json missing: {json}");
        assert!(json.contains("\"repair_bytes\":"), "repair metrics missing: {json}");
        assert!(json.contains("\"client\":{\"submitted\":"), "client json missing: {json}");
    }

    #[test]
    fn kv_workloads_without_kv_table_fail_validation() {
        let s = Scenario::build("kv-missing", 4)
            .topology(Topology::Static)
            .phase(Phase::new("p").workload(0, crate::model::WorkloadAction::Put {
                count: 1,
                via: None,
                value_size: None,
                key_dist: crate::model::KeyDist::Sequential,
            }))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        let err = run(&s, &mut driver).unwrap_err();
        assert!(err.contains("[kv]"), "got: {err}");

        let s = Scenario::build("kv-missing-expect", 4)
            .topology(Topology::Static)
            .phase(Phase::new("p").run_for(100).expect(Expect::KvAvailable))
            .finish();
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).unwrap();
        let err = run(&s, &mut driver).unwrap_err();
        assert!(err.contains("[kv]"), "got: {err}");
    }

    #[test]
    fn settings_overrides_change_protocol_behavior() {
        use crate::model::SettingsPatch;
        // A scenario that slashes the failure-detector cadence converges
        // on a crash much faster than the default configuration.
        let base = |patch: SettingsPatch| {
            Scenario::build("tuned", 12)
                .seed(17)
                .topology(Topology::Static)
                .settings(patch)
                .phase(
                    Phase::new("crash")
                        .inject(Inject::at(1_000, FaultSpec::Crash(Target::node(5))))
                        .expect(Expect::Converge {
                            to: SizeExpr::n_minus(1),
                            within_ms: 300_000,
                            within_full_ms: None,
                        }),
                )
                .finish()
        };
        let run_one = |s: &Scenario| {
            let mut driver = SimDriver::new(SystemKind::Rapid, s).unwrap();
            let report = run(s, &mut driver).unwrap();
            assert!(report.passed, "failures: {:?}", report.failures());
            report.phases[0].converged_at_ms.unwrap()
        };
        let slow = run_one(&base(SettingsPatch::default()));
        let fast = run_one(&base(SettingsPatch {
            fd_probe_interval_ms: Some(200),
            fd_probe_timeout_ms: Some(200),
            consensus_fallback_base_ms: Some(1_000),
            consensus_fallback_jitter_ms: Some(500),
            ..SettingsPatch::default()
        }));
        assert!(
            fast < slow,
            "5x faster probing must converge sooner: fast={fast}ms slow={slow}ms"
        );
    }

    #[test]
    fn settings_overrides_reject_baselines_and_bad_combinations() {
        use crate::model::SettingsPatch;
        let s = Scenario::build("t", 5)
            .settings(SettingsPatch {
                fd_probe_interval_ms: Some(500),
                ..SettingsPatch::default()
            })
            .phase(Phase::new("p").run_for(100))
            .finish();
        let err = SimDriver::new(SystemKind::Memberlist, &s).err().expect("must reject");
        assert!(err.contains("native configuration"), "got: {err}");
        // An invalid combination (H > K) is rejected up front.
        let bad = Scenario::build("t", 5)
            .settings(SettingsPatch {
                k: Some(4),
                h: Some(9),
                ..SettingsPatch::default()
            })
            .phase(Phase::new("p").run_for(100))
            .finish();
        let err = SimDriver::new(SystemKind::Rapid, &bad).err().expect("must reject");
        assert!(err.contains("invalid"), "got: {err}");
    }

    #[test]
    fn repeats_expand_into_flip_flop_schedules() {
        let s = Scenario::build("t", 50)
            .group("f", Group::Range { first: 0, count: 2 })
            .finish();
        let inject = Inject::at(
            10_000,
            FaultSpec::IngressDrop(Target::group("f"), 1.0),
        )
        .every(40_000, 3);
        let fires = expand_inject(&s, 100_000, &inject).unwrap();
        assert_eq!(fires.len(), 6, "3 firings x 2 nodes");
        assert_eq!(fires[0].0, 110_000);
        assert_eq!(fires[5].0, 190_000);
    }
}
