//! Determinism and cross-driver pins for the shipped scenario files.

use rapid_scenario::{runner, RealDriver, Scenario, SimDriver, SystemKind};

fn shipped(stem: &str) -> Scenario {
    let path = format!(
        "{}/../../scenarios/{stem}.toml",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("shipped scenario readable");
    Scenario::from_toml(&text).expect("shipped scenario valid")
}

/// Every shipped scenario file must parse, resolve its groups, and carry
/// at least one expectation or fixed run window per phase.
#[test]
fn all_shipped_scenarios_are_well_formed() {
    for stem in [
        "smoke_crash",
        "fig08_crashes",
        "fig09_flipflop",
        "fig10_packet_loss",
        "chaos_partition",
        "kv_churn",
        "kv_rebalance",
        "kv_repair",
        "kv_overload",
    ] {
        let s = shipped(stem);
        for (name, g) in &s.groups {
            let idxs = g.resolve(s.n);
            assert!(!idxs.is_empty(), "{stem}: group {name} resolves empty");
            assert!(
                idxs.iter().all(|&i| i < s.n),
                "{stem}: group {name} out of range"
            );
        }
        for p in &s.phases {
            assert!(
                p.run_ms.is_some() || !p.expects.is_empty(),
                "{stem}: phase {} neither runs nor expects",
                p.name
            );
        }
    }
}

/// The golden determinism pin: a shipped TOML scenario produces an
/// *identical* Report JSON across two runs of the same seed on the sim
/// driver.
#[test]
fn shipped_scenario_report_json_is_identical_across_runs() {
    let scenario = shipped("smoke_crash");
    let run_once = || {
        let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
        runner::run(&scenario, &mut driver)
            .expect("run")
            .to_json_string()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "same seed must give byte-identical reports");
    assert!(first.contains("\"passed\":true"), "smoke must pass: {first}");
}

/// A different seed must change the trace-derived fields (convergence
/// instants), i.e. the report is genuinely seed-dependent, not constant.
#[test]
fn different_seed_changes_the_report() {
    let scenario = shipped("smoke_crash");
    let mut reseeded = scenario.clone();
    reseeded.seed = scenario.seed + 1;
    let json = |s: &Scenario| {
        let mut driver = SimDriver::new(SystemKind::Rapid, s).expect("sim driver");
        runner::run(s, &mut driver).expect("run").to_json_string()
    };
    assert_ne!(json(&scenario), json(&reseeded));
}

/// The cross-driver contract: the same smoke scenario file runs
/// unmodified on the simulator and on a real TCP cluster, and passes on
/// both.
#[test]
fn smoke_scenario_passes_on_both_drivers() {
    let scenario = shipped("smoke_crash");

    let mut sim = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
    let sim_report = runner::run(&scenario, &mut sim).expect("sim run");
    assert!(
        sim_report.passed,
        "sim failures: {:?}",
        sim_report.failures()
    );
    assert_eq!(sim_report.driver, "sim:rapid");

    let mut real = RealDriver::new(&scenario).expect("real driver");
    let real_report = runner::run(&scenario, &mut real).expect("real run");
    assert!(
        real_report.passed,
        "real failures: {:?}",
        real_report.failures()
    );
    assert_eq!(real_report.driver, "real:rapid");
    assert!(
        real_report.phases[1].converged_at_ms.is_some(),
        "crash must be detected over real TCP"
    );
}

/// The KV determinism pin: `kv_churn` (placement, replication, handoff,
/// ledger sweeps and all) produces byte-identical report JSON across two
/// sim runs of the same seed — and the report carries the KV metrics.
#[test]
fn kv_churn_report_json_is_identical_across_sim_runs() {
    let scenario = shipped("kv_churn");
    let run_once = || {
        let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
        runner::run(&scenario, &mut driver)
            .expect("run")
            .to_json_string()
    };
    let first = run_once();
    assert_eq!(first, run_once(), "same seed must give byte-identical reports");
    assert!(first.contains("\"passed\":true"), "kv_churn must pass: {first}");
    assert!(first.contains("\"kv\":{"), "kv metrics must be reported: {first}");
    assert!(
        first.contains("no_lost_acked_writes"),
        "durability expectation must be present: {first}"
    );
}

/// The wire-batching equivalence golden (CI): `kv_churn` run with the
/// per-peer outbox enabled and disabled must produce identical *ledger
/// outcomes* — every phase's expectations (availability, durability,
/// consistent histories) pass in both modes, the healthy load phase acks
/// every write in both, and no partition is ever lost. Batching changes
/// how many frames carry the traffic (visible in `frames_sent` <
/// `msgs_sent`), never what the cluster decides or stores.
#[test]
fn kv_churn_batched_and_unbatched_ledgers_agree() {
    let batched = shipped("kv_churn");
    let mut unbatched = batched.clone();
    unbatched.settings.batch_wire = Some(false);

    let run = |scenario: &Scenario| {
        let mut driver = SimDriver::new(SystemKind::Rapid, scenario).expect("sim driver");
        runner::run(scenario, &mut driver).expect("run")
    };
    let a = run(&batched);
    let b = run(&unbatched);
    assert!(a.passed, "batched failures: {:?}", a.failures());
    assert!(b.passed, "unbatched failures: {:?}", b.failures());
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.name, pb.name);
        let verdicts =
            |p: &rapid_scenario::PhaseReport| -> Vec<(String, Option<bool>)> {
                p.expects.iter().map(|e| (e.desc.clone(), e.passed)).collect()
            };
        assert_eq!(
            verdicts(pa),
            verdicts(pb),
            "phase {} verdicts must agree across wire modes",
            pa.name
        );
        if let (Some(ka), Some(kb)) = (pa.kv, pb.kv) {
            assert_eq!(
                (ka.puts, ka.partitions_lost),
                (kb.puts, kb.partitions_lost),
                "phase {} ledger shape must agree",
                pa.name
            );
        }
    }
    // The healthy load phase acks everything in both modes.
    let (la, lb) = (a.phases[1].kv.expect("kv"), b.phases[1].kv.expect("kv"));
    assert_eq!((la.puts, la.acked), (lb.puts, lb.acked), "load ledger must agree");
    assert_eq!(la.acked, la.puts, "healthy cluster must ack everything");
    // And only the batched run coalesces frames.
    let (sa, sb) = (a.phases[3].kv.expect("kv"), b.phases[3].kv.expect("kv"));
    assert!(sa.frames_sent < sa.msgs_sent, "batched run must coalesce: {sa:?}");
    assert_eq!(sb.frames_sent, sb.msgs_sent, "unbatched run must not: {sb:?}");
}

/// The KV cross-driver contract: the same `kv_churn` file runs
/// unmodified on a real TCP cluster and keeps every acked write.
#[test]
fn kv_churn_passes_on_the_real_driver() {
    let scenario = shipped("kv_churn");
    let mut real = RealDriver::new(&scenario).expect("real driver");
    let report = runner::run(&scenario, &mut real).expect("real run");
    assert!(report.passed, "real failures: {:?}", report.failures());
    let kv = report.phases[2].kv.expect("kv metrics on the churn phase");
    assert!(kv.rebalances >= 1, "crashes must trigger rebalancing");
    assert_eq!(kv.partitions_lost, 0, "RF=3 must survive two crashes");
}

/// `kv_repair` kills the deterministic handoff source inside the first
/// crash's detection window, so the removal view names an already-dead
/// push source. The run must pass with anti-entropy repair actually
/// exercised (pulls triggered, bytes served), every acked write intact,
/// and byte-identical report JSON across two sim runs of the seed.
#[test]
fn kv_repair_recovers_lost_handoffs_on_the_sim_driver() {
    let scenario = shipped("kv_repair");
    let run_once = || {
        let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
        runner::run(&scenario, &mut driver).expect("run")
    };
    let report = run_once();
    assert!(report.passed, "failures: {:?}", report.failures());
    let wound = report.phases[2].kv.expect("kv metrics on the wound phase");
    assert!(
        wound.repairs >= 1,
        "the staggered crash must trigger repair pulls: {wound:?}"
    );
    assert!(wound.repair_bytes > 0, "repair must serve bytes: {wound:?}");
    assert_eq!(wound.partitions_lost, 0, "RF=3 must survive two crashes");
    assert!(
        report.phases[2]
            .expects
            .iter()
            .any(|e| e.desc.starts_with("kv_converged") && e.passed == Some(true)),
        "digest sweep must confirm convergence"
    );
    assert_eq!(
        report.to_json_string(),
        run_once().to_json_string(),
        "same seed must give byte-identical reports"
    );
}

/// `kv_rebalance` exercises scale-out + scale-in handoff on the sim
/// driver and must keep every acked write through both.
#[test]
fn kv_rebalance_passes_and_moves_data() {
    let scenario = shipped("kv_rebalance");
    let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
    let report = runner::run(&scenario, &mut driver).expect("run");
    assert!(report.passed, "failures: {:?}", report.failures());
    let out = report.phases[1].kv.expect("kv metrics");
    assert!(out.bytes_moved > 0, "scale-out must hand partitions to joiners");
    let last = report.phases[2].kv.expect("kv metrics");
    assert!(last.bytes_moved > out.bytes_moved, "scale-in must move more data");
    assert_eq!(last.partitions_lost, 0, "graceful scaling loses nothing");
}

/// The flight-recorder determinism pin: on a shipped scenario the merged
/// trace JSONL is *byte-identical* across simulator thread counts — the
/// sharded engine keeps per-node event streams identical, and the dump
/// is a pure merge of ring contents.
#[test]
fn shipped_scenario_trace_is_identical_across_thread_counts() {
    use rapid_scenario::Driver;
    let base = shipped("smoke_crash");
    let trace_with = |threads: usize| {
        let mut s = base.clone();
        s.settings.threads = Some(threads);
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).expect("sim driver");
        runner::run(&s, &mut driver).expect("run");
        driver.flight_dump()
    };
    let t1 = trace_with(1);
    assert!(!t1.is_empty(), "sim runs record traces by default");
    assert!(
        t1.iter().any(|l| l.contains("\"kind\":\"view_install\"")),
        "crash scenario must trace view installs: {t1:?}"
    );
    for threads in [2, 4] {
        assert_eq!(
            t1,
            trace_with(threads),
            "trace must be byte-identical at {threads} threads"
        );
    }
}

/// A failed expectation captures the flight recorder's tail — the causal
/// history leading into the failure — while passing phases stay clean.
#[test]
fn failed_expectation_dumps_the_flight_recorder() {
    use rapid_scenario::model::{Expect, Phase, SizeExpr, Topology};
    let s = Scenario::build("fr-dump", 5)
        .seed(11)
        .topology(Topology::Static)
        .phase(Phase::new("ok").run_for(2_000).expect(Expect::AllReport(SizeExpr::n())))
        .phase(Phase::new("bad").run_for(1_000).expect(Expect::AllReport(SizeExpr::abs(99))))
        .finish();
    let mut driver = SimDriver::new(SystemKind::Rapid, &s).expect("sim driver");
    let report = runner::run(&s, &mut driver).expect("run");
    assert!(!report.passed);
    assert!(
        report.phases[0].failure_dump.is_empty(),
        "passing phases carry no dump"
    );
    let dump = &report.phases[1].failure_dump;
    assert!(!dump.is_empty(), "failed phase must dump trace events");
    assert!(dump.len() <= 64, "dump is a bounded tail, got {}", dump.len());
    assert!(
        dump.iter().all(|l| l.starts_with("{\"t\":") && l.ends_with('}')),
        "dump lines are JSONL: {dump:?}"
    );
    // The dump is diagnostics, not part of the comparable report bytes.
    assert!(!report.to_json_string().contains("failure_dump"));
}

/// The metrics-plane determinism pin: with sampling on, a shipped
/// scenario's merged `--metrics` JSONL and its report (now carrying
/// per-phase `timeline` objects) are *byte-identical* across simulator
/// thread counts — and with sampling off (the default), the report
/// carries no timeline at all, so prior report bytes are unchanged.
#[test]
fn shipped_scenario_metrics_are_identical_across_thread_counts() {
    use rapid_scenario::Driver;
    let base = shipped("smoke_crash");
    let run_with = |threads: usize, sample_ms: Option<u64>| {
        let mut s = base.clone();
        s.settings.threads = Some(threads);
        s.settings.obs_sample_ms = sample_ms;
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).expect("sim driver");
        let report = runner::run(&s, &mut driver).expect("run");
        (report, driver.metrics_dump(), driver.obs_dropped())
    };
    let (r1, m1, d1) = run_with(1, Some(1_000));
    assert!(!m1.is_empty(), "sampling must produce timeline lines");
    assert!(
        m1.iter().all(|l| l.starts_with("{\"t\":") && l.contains("\"node\":")),
        "metrics dump is JSONL: {m1:?}"
    );
    assert_eq!(d1, 0, "default ring must not drop at this scale");
    let tl = r1.phases[1].timeline.as_ref().expect("crash phase timeline");
    assert_eq!(tl.sample_ms, 1_000);
    assert!(!tl.series.is_empty(), "sampled phase must carry series rows");
    assert!(
        tl.series.iter().any(|p| p.msgs > 0),
        "cluster-wide rows must show traffic: {:?}",
        tl.series
    );
    assert!(
        r1.to_json_string().contains("\"timeline\":{"),
        "report JSON must carry the timeline object"
    );
    for threads in [2, 4] {
        let (r, m, _) = run_with(threads, Some(1_000));
        assert_eq!(m1, m, "metrics JSONL must be byte-identical at {threads} threads");
        assert_eq!(
            r1.to_json_string(),
            r.to_json_string(),
            "report must be byte-identical at {threads} threads"
        );
    }
    // Sampling off: no timeline anywhere in the report bytes.
    let (off, m_off, _) = run_with(1, None);
    assert!(m_off.is_empty(), "no sampling, no metrics lines");
    assert!(
        !off.to_json_string().contains("timeline"),
        "obs_sample_ms unset must leave report bytes free of timelines"
    );
}

/// The admission-control pin: `kv_overload` floods tiny coordinator
/// inboxes with a burst beyond capacity. The cluster must shed with
/// typed overload verdicts (never ack-then-drop: `no_lost_acked_writes`
/// holds while shedding), throughput must recover per the metrics-plane
/// timeline, the client plane must surface its shed/retry counters in
/// the report, and the report JSON must be byte-identical across
/// simulator thread counts.
#[test]
fn kv_overload_sheds_typed_keeps_acked_writes_and_recovers() {
    let base = shipped("kv_overload");
    let run_with = |threads: usize| {
        let mut s = base.clone();
        s.settings.threads = Some(threads);
        let mut driver = SimDriver::new(SystemKind::Rapid, &s).expect("sim driver");
        runner::run(&s, &mut driver).expect("run")
    };
    let report = run_with(1);
    assert!(report.passed, "failures: {:?}", report.failures());
    let burst = report.phases[1].kv.expect("kv metrics on the burst phase");
    assert!(burst.shed >= 1, "the burst must shed: {burst:?}");
    assert!(
        burst.acked < burst.puts,
        "an over-capacity burst cannot ack everything: {burst:?}"
    );
    let client = burst.client.expect("client metrics in client mode");
    assert!(client.shed >= 1, "client must see overload verdicts: {client:?}");
    assert!(client.retries >= 1, "shed ops re-queue: {client:?}");
    let json = report.to_json_string();
    assert!(json.contains("\"shed\":"), "shed must be reported: {json}");
    assert!(json.contains("\"client\":{"), "client plane must be reported: {json}");
    assert_eq!(
        json,
        run_with(2).to_json_string(),
        "report must be byte-identical across thread counts"
    );
}

/// Fault-injecting phases report per-process fault→view-install latency
/// samples, and those samples are deterministic across runs.
#[test]
fn crash_phase_reports_convergence_samples() {
    let scenario = shipped("smoke_crash");
    let run_once = || {
        let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
        runner::run(&scenario, &mut driver).expect("run")
    };
    let report = run_once();
    assert!(
        report.phases[0].convergence.is_none(),
        "no faults in the form phase"
    );
    let c = report.phases[1].convergence.as_ref().expect("crash phase converges");
    assert_eq!(c.samples.len(), 4, "four survivors install the view");
    assert!(c.samples.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
    assert!(*c.samples.last().unwrap() == c.max, "max is the last sample");
    assert!(c.p50 <= c.p99, "quantiles are monotone");
    assert!(c.p99 >= c.max || c.p99 * 5 >= c.max * 4, "p99 near max for 4 samples");
    assert_eq!(
        report.to_json_string(),
        run_once().to_json_string(),
        "convergence samples are deterministic"
    );
}
