//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), integer/float range strategies, tuple
//! strategies, `any::<T>()`, `prop::collection::{vec, btree_set}`,
//! `prop::sample::Index`, and a tiny `.{a,b}` string-regex strategy.
//!
//! Cases are generated from a deterministic per-test RNG so failures are
//! reproducible; set `PROPTEST_CASES` to override the case count globally.

use std::ops::Range;

/// Deterministic case-generation RNG (splitmix64 core).
pub mod test_runner {
    /// Per-case random source handed to strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic stream from a test name and case index.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// A float uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform index in `[0, n)`. `n` must be nonzero.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Per-run configuration: number of generated cases.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// The effective case count: `PROPTEST_CASES` overrides the default.
    pub fn effective_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }
}

pub use test_runner::Config as ProptestConfig;

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Produces one value from the RNG stream.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % width) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, u128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String strategy from a regex-like pattern. Supports `.{a,b}` (a string
/// of `a..=b` arbitrary non-newline chars, mixing ASCII and multi-byte);
/// any other pattern is produced literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut test_runner::TestRng) -> String {
        if let Some(rest) = self.strip_prefix(".{") {
            if let Some(body) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = body.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                        let len = lo + rng.index(hi - lo + 1);
                        const POOL: &[char] = &[
                            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', '-', '_', '.',
                            ':', '/', ' ', '~', 'é', 'ß', 'λ', '中', '🦀',
                        ];
                        return (0..len).map(|_| POOL[rng.index(POOL.len())]).collect();
                    }
                }
            }
        }
        (*self).to_string()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, u128);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{test_runner::TestRng, Strategy};
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + if span == 0 { 0 } else { rng.index(span) };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let span = self.size.end - self.size.start;
                let target = self.size.start + if span == 0 { 0 } else { rng.index(span) };
                let mut set = BTreeSet::new();
                // Duplicates shrink the set below target; retry a bounded
                // number of times like the real crate does.
                for _ in 0..target.saturating_mul(16).max(16) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }

        /// A set of roughly `size` elements drawn from `element`.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, size }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{test_runner::TestRng, Arbitrary};

        /// An abstract index into a collection of not-yet-known size.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Resolves the index against a concrete size (must be > 0).
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "Index::index on empty collection");
                (self.0 % size as u64) as usize
            }

            /// Picks the referenced element of a slice.
            pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
                &slice[self.index(slice.len())]
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each named function runs `cases` times with
/// values drawn from the listed strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest! { @cases ($cfg).cases; $($rest)* }
    };
    ( @cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::effective_cases($cases);
            for case in 0..cases {
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng); )+
                $body
            }
        }
    )*};
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cases $crate::ProptestConfig::default().cases; $($rest)* }
    };
}

/// Asserts a condition inside a property (plain `assert!` passthrough).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` passthrough).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` passthrough).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0usize..3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.0..1.0).contains(&f));
        }

        /// Collections respect their size bounds.
        #[test]
        fn collections_sized(
            v in prop::collection::vec(any::<u8>(), 2..5),
            s in prop::collection::btree_set(0u128..50, 1..6),
            idx in any::<prop::sample::Index>(),
            tup in (0u8..4, ".{0,12}"),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() < 6);
            prop_assert!(idx.index(7) < 7);
            prop_assert!(tup.0 < 4);
            prop_assert!(tup.1.chars().count() <= 12);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
