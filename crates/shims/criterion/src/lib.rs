//! Offline micro-benchmark harness with a `criterion`-compatible API
//! subset: `Criterion`, `benchmark_group`/`bench_with_input`,
//! `bench_function`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed adaptively (~0.3 s
//! after warm-up) and reported as ns/iter on stdout.
//!
//! Set `BENCH_QUICK=1` to run each benchmark for a handful of iterations
//! only (CI smoke mode).

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
    iters: u64,
    quick: bool,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring adaptively.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let (warm, budget) = if self.quick {
            (1u64, Duration::from_millis(10))
        } else {
            (3, Duration::from_millis(300))
        };
        for _ in 0..warm {
            hint_black_box(f());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            hint_black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            quick: self.quick,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Finishes the group (no-op; mirrors criterion's API).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var("BENCH_QUICK").map(|v| v == "1").unwrap_or(false),
        }
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let human = if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench {name:<44} {human:>12}/iter ({} iters)", b.iters);
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            quick: self.quick,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let quick = self.quick;
        BenchmarkGroup {
            name: name.to_string(),
            quick,
            _c: self,
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $f(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
