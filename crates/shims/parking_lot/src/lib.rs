//! Offline shim of `parking_lot`: non-poisoning `Mutex`/`RwLock` facades
//! over `std::sync`. Poisoned locks are recovered transparently (this
//! codebase never holds a lock across a panic-prone region).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose accessors return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new RwLock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
