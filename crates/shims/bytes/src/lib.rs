//! Offline subset of the `bytes` crate: just the [`Buf`] / [`BufMut`]
//! cursor traits over `&[u8]` and `Vec<u8>`, which is all the wire codec
//! uses. Little-endian accessors only; every getter panics on underflow
//! exactly like the real crate (callers bounds-check via `remaining`).

/// Read cursor over a contiguous byte slice.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-only write cursor.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16_le(0x1234);
        v.put_u32_le(0xdeadbeef);
        v.put_u64_le(0x0123_4567_89ab_cdef);
        v.put_u128_le(u128::MAX - 1);
        v.put_slice(b"xy");
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdeadbeef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_u128_le(), u128::MAX - 1);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"y");
    }
}
