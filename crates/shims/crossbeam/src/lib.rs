//! Offline shim of `crossbeam::channel` over `std::sync::mpsc`.
//!
//! Only the bounded MPMC surface the transport uses: `bounded`, cloneable
//! `Sender`, `recv_timeout` / `try_recv` on `Receiver`. The std receiver is
//! single-consumer, which matches every call site in this workspace.

/// Multi-producer channels with a crossbeam-compatible API subset.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (or all receivers dropped).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
        /// Enqueues without blocking; fails if the channel is full.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
        /// Returns immediately with a value or an emptiness report.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "full");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
