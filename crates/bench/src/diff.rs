//! Leaf-by-leaf comparison of two benchmark JSON documents, used by the
//! `bench_diff` binary as a CI regression gate.
//!
//! The comparison is schema-free: both documents are flattened into
//! `(dotted.path, value)` numeric leaves (`results.0.op_latency_p99_ms`),
//! then every path present in both is classified by its leaf name:
//!
//! - names ending in `_ms` or `_bytes` are **lower-is-better** — a
//!   regression when `current > baseline * (1 + tol)`;
//! - names containing `per_s` or `per_sec` are **higher-is-better** — a
//!   regression when `current < baseline * (1 - tol)`;
//! - everything else (counts, config echoes) is informational only.
//!
//! Values above `1e15` are skipped on either side: they are sentinel
//! encodings (`u64::MAX` for "never became available"), not measurements.
//! Paths matching any `--skip` substring are excluded; wall-clock leaves
//! are the usual candidates on shared hardware.

/// Comparison knobs; `tol` is a fraction (0.25 = 25% slack).
pub struct DiffOpts {
    /// Allowed relative degradation before a leaf counts as regressed.
    pub tol: f64,
    /// Path substrings to exclude from comparison.
    pub skip: Vec<String>,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts { tol: 0.25, skip: Vec::new() }
    }
}

/// One regressed leaf: path, baseline value, current value.
#[derive(Debug, PartialEq)]
pub struct Regression {
    /// Dotted path of the leaf (`results.0.op_latency_p99_ms`).
    pub path: String,
    /// Value in the baseline document.
    pub baseline: f64,
    /// Value in the current document.
    pub current: f64,
}

/// Sentinel ceiling: leaves at or above this are encodings, not data.
const SENTINEL: f64 = 1e15;

/// Flattens a JSON document into its numeric leaves as
/// `(dotted.path, value)` pairs, in document order. Strings, booleans
/// and nulls are walked over but produce no leaves. Returns an error
/// with byte offset on malformed input.
pub fn numeric_leaves(text: &str) -> Result<Vec<(String, f64)>, String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    walk(bytes, &mut pos, &mut String::new(), &mut out)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(out)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn walk(
    b: &[u8],
    pos: &mut usize,
    path: &mut String,
    out: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            loop {
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let saved = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&key);
                walk(b, pos, path, out)?;
                path.truncate(saved);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {}
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut idx = 0usize;
            loop {
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                let saved = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&idx.to_string());
                walk(b, pos, path, out)?;
                path.truncate(saved);
                idx += 1;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {}
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            parse_string(b, pos)?;
            Ok(())
        }
        Some(b't') => expect(b, pos, "true"),
        Some(b'f') => expect(b, pos, "false"),
        Some(b'n') => expect(b, pos, "null"),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            let v: f64 = s
                .parse()
                .map_err(|_| format!("bad number {s:?} at byte {start}"))?;
            out.push((path.clone(), v));
            Ok(())
        }
        None => Err("unexpected end of input".into()),
    }
}

fn expect(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("expected {word:?} at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                let s = std::str::from_utf8(&b[start..*pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

/// True when a lower value of this leaf is better (latency, traffic).
fn lower_is_better(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.ends_with("_ms") || leaf.ends_with("_bytes")
}

/// True when a higher value of this leaf is better (throughput).
fn higher_is_better(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    leaf.contains("per_s") || leaf.contains("per_sec")
}

/// Compares two documents and returns the regressed leaves, in the
/// baseline's document order. Leaves present in only one document are
/// ignored (schemas may grow between PRs).
pub fn regressions(
    baseline: &str,
    current: &str,
    opts: &DiffOpts,
) -> Result<Vec<Regression>, String> {
    let base = numeric_leaves(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = numeric_leaves(current).map_err(|e| format!("current: {e}"))?;
    let cur_map: std::collections::HashMap<&str, f64> =
        cur.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let mut out = Vec::new();
    for (path, b) in &base {
        if opts.skip.iter().any(|s| path.contains(s.as_str())) {
            continue;
        }
        let Some(&c) = cur_map.get(path.as_str()) else {
            continue;
        };
        if b.abs() >= SENTINEL || c.abs() >= SENTINEL {
            continue;
        }
        let regressed = if lower_is_better(path) {
            c > b * (1.0 + opts.tol)
        } else if higher_is_better(path) {
            c < b * (1.0 - opts.tol)
        } else {
            false
        };
        if regressed {
            out.push(Regression { path: path.clone(), baseline: *b, current: c });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "bench": "route_bench",
      "threads": 1,
      "results": [
        {"n": 64, "op_latency_p99_ms": 4, "steady_ops_per_sec_wall": 100000.0,
         "steady_kv_wire_bytes": 50000, "unavailability_ms": 18446744073709551615}
      ]
    }"#;

    #[test]
    fn flattens_numeric_leaves_with_dotted_paths() {
        let leaves = numeric_leaves(BASE).unwrap();
        let paths: Vec<&str> = leaves.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            [
                "threads",
                "results.0.n",
                "results.0.op_latency_p99_ms",
                "results.0.steady_ops_per_sec_wall",
                "results.0.steady_kv_wire_bytes",
                "results.0.unavailability_ms",
            ]
        );
        assert_eq!(leaves[1].1, 64.0);
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let r = regressions(BASE, BASE, &DiffOpts::default()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn detects_injected_latency_regression() {
        let cur = BASE.replace("\"op_latency_p99_ms\": 4", "\"op_latency_p99_ms\": 9");
        let r = regressions(BASE, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].path, "results.0.op_latency_p99_ms");
        assert_eq!((r[0].baseline, r[0].current), (4.0, 9.0));
    }

    #[test]
    fn detects_throughput_drop_and_respects_tolerance() {
        let cur = BASE.replace("100000.0", "60000.0");
        let r = regressions(BASE, &cur, &DiffOpts::default()).unwrap();
        assert_eq!(r.len(), 1, "40% drop beats the 25% default tolerance");
        assert_eq!(r[0].path, "results.0.steady_ops_per_sec_wall");
        let lax = DiffOpts { tol: 0.5, ..DiffOpts::default() };
        assert!(regressions(BASE, &cur, &lax).unwrap().is_empty());
    }

    #[test]
    fn skip_substring_and_sentinel_values_are_excluded() {
        // A huge unavailability_ms on both sides is a u64::MAX sentinel.
        let cur = BASE
            .replace("\"steady_kv_wire_bytes\": 50000", "\"steady_kv_wire_bytes\": 90000");
        let opts = DiffOpts { skip: vec!["wire_bytes".into()], ..DiffOpts::default() };
        assert!(regressions(BASE, &cur, &opts).unwrap().is_empty());
        assert_eq!(regressions(BASE, &cur, &DiffOpts::default()).unwrap().len(), 1);
    }

    #[test]
    fn counts_and_config_leaves_are_informational() {
        let cur = BASE.replace("\"threads\": 1", "\"threads\": 4");
        assert!(regressions(BASE, &cur, &DiffOpts::default()).unwrap().is_empty());
    }

    #[test]
    fn new_shards_and_per_shard_leaves_do_not_trip_an_old_baseline() {
        // A post-sharding document grows a `shards` config leaf and
        // per-shard series the pre-sharding baseline never had. Schema
        // growth must stay invisible to the gate in both directions.
        let cur = BASE.replace(
            "\"threads\": 1,",
            "\"threads\": 1,\n      \"shards\": 4,\n      \"shard_depth\": [3, 1, 0, 2],\n      \"shard_ops\": [120, 88, 91, 104],",
        );
        assert!(regressions(BASE, &cur, &DiffOpts::default()).unwrap().is_empty());
        assert!(regressions(&cur, BASE, &DiffOpts::default()).unwrap().is_empty());
        // And the new leaves are informational (config/count shaped),
        // so even when both sides carry them a change is not a regression.
        let older = cur.replace("\"shards\": 4", "\"shards\": 1");
        assert!(regressions(&older, &cur, &DiffOpts::default()).unwrap().is_empty());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(numeric_leaves("{\"a\": }").is_err());
        assert!(numeric_leaves("{\"a\": 1} x").is_err());
    }
}
