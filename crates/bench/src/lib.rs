//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§7) or proof section (§8). Runs are scaled down by
//! default so the full suite finishes on a laptop; pass `--full` (or set
//! `RAPID_BENCH_FULL=1`) for paper-scale parameters. All runs are
//! deterministic in `--seed`.
//!
//! The [`World`] type hosts any of the compared membership systems —
//! Rapid (decentralized), Rapid-C (logically centralized), Memberlist
//! (SWIM), ZooKeeper-like, and Akka-like — behind one interface on the
//! identical simulated network, so cross-system comparisons share fault
//! injection and measurement code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

use central_config::world::{build_world as build_zk, ZkProc};
use gossip_member::{AkkaConfig, AkkaNode};
use rapid_core::id::Endpoint;
use rapid_sim::cluster::{RapidActor, RapidClusterBuilder};
use rapid_sim::{Fault, Sample, Simulation};
use swim_member::{SwimConfig, SwimNode};

/// Command-line arguments shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Paper-scale parameters instead of laptop-scale defaults.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
}

impl Args {
    /// Parses `--full` and `--seed N` from `std::env::args`, or
    /// `RAPID_BENCH_FULL=1` from the environment.
    pub fn parse() -> Args {
        let mut full = std::env::var("RAPID_BENCH_FULL").map(|v| v == "1").unwrap_or(false);
        let mut seed = 42;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--full" => full = true,
                "--seed" => {
                    i += 1;
                    seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
                }
                _ => {}
            }
            i += 1;
        }
        Args { full, seed }
    }
}

/// Prints a CSV header + rows to stdout.
pub fn print_csv<R: Display>(header: &str, rows: impl IntoIterator<Item = R>) {
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
}

/// The membership systems compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Decentralized Rapid (§4).
    Rapid,
    /// Logically centralized Rapid (§5), 3-node ensemble.
    RapidC,
    /// Memberlist / SWIM.
    Memberlist,
    /// ZooKeeper-like central configuration service, 3-node ensemble.
    ZooKeeper,
    /// Akka-Cluster-like epidemic membership.
    AkkaLike,
}

impl SystemKind {
    /// Short label used in CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Rapid => "rapid",
            SystemKind::RapidC => "rapid-c",
            SystemKind::Memberlist => "memberlist",
            SystemKind::ZooKeeper => "zookeeper",
            SystemKind::AkkaLike => "akka",
        }
    }

    /// The systems compared in the bootstrap experiments (Figs. 5–7).
    pub fn bootstrap_set() -> [SystemKind; 4] {
        [
            SystemKind::ZooKeeper,
            SystemKind::Memberlist,
            SystemKind::RapidC,
            SystemKind::Rapid,
        ]
    }
}

const ENSEMBLE: usize = 3;

/// A simulated deployment of one membership system with `n` cluster
/// processes (plus a 3-node auxiliary ensemble for the centralized ones).
pub enum World {
    /// Decentralized Rapid.
    Rapid(Simulation<RapidActor>),
    /// Rapid-C (ensemble actors `0..3`).
    RapidC(Simulation<RapidActor>),
    /// SWIM.
    Swim(Simulation<SwimNode>),
    /// ZooKeeper-like (server actors `0..3`).
    Zk(Simulation<ZkProc>),
    /// Akka-like.
    Akka(Simulation<AkkaNode>),
}

fn swim_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("node-{i}"), 7000)
}

fn akka_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("node-{i}"), 2552)
}

impl World {
    /// Builds a bootstrap deployment: cluster process 0 (or the auxiliary
    /// ensemble) starts at t=0; the remaining processes start joining at
    /// t=10 s, as in the paper's bootstrap experiments.
    pub fn bootstrap(kind: SystemKind, n: usize, seed: u64) -> World {
        match kind {
            SystemKind::Rapid => {
                World::Rapid(RapidClusterBuilder::new(n).seed(seed).build_bootstrap())
            }
            SystemKind::RapidC => {
                let (sim, _) = RapidClusterBuilder::new(n).seed(seed).build_centralized(ENSEMBLE);
                World::RapidC(sim)
            }
            SystemKind::Memberlist => {
                let mut sim = Simulation::new(seed, 100);
                sim.add_actor(
                    swim_ep(0),
                    SwimNode::new(swim_ep(0), vec![], SwimConfig::default(), seed),
                );
                for i in 1..n {
                    sim.add_actor_at(
                        swim_ep(i),
                        SwimNode::new(
                            swim_ep(i),
                            vec![swim_ep(0)],
                            SwimConfig::default(),
                            seed + i as u64,
                        ),
                        10_000,
                    );
                }
                World::Swim(sim)
            }
            SystemKind::ZooKeeper => World::Zk(build_zk(ENSEMBLE, n, 6_000, 10_000, seed)),
            SystemKind::AkkaLike => {
                let mut sim = Simulation::new(seed, 100);
                sim.add_actor(
                    akka_ep(0),
                    AkkaNode::new(akka_ep(0), vec![], AkkaConfig::default(), seed),
                );
                for i in 1..n {
                    sim.add_actor_at(
                        akka_ep(i),
                        AkkaNode::new(
                            akka_ep(i),
                            vec![akka_ep(0)],
                            AkkaConfig::default(),
                            seed + i as u64,
                        ),
                        10_000,
                    );
                }
                World::Akka(sim)
            }
        }
    }

    /// Index offset of cluster process 0 in actor space (the auxiliary
    /// ensembles occupy the first indices in centralized systems).
    pub fn cluster_offset(&self) -> usize {
        match self {
            World::Rapid(_) | World::Swim(_) | World::Akka(_) => 0,
            World::RapidC(_) | World::Zk(_) => ENSEMBLE,
        }
    }

    /// Number of actors (including auxiliary ensembles).
    pub fn actors(&self) -> usize {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.len(),
            World::Swim(s) => s.len(),
            World::Zk(s) => s.len(),
            World::Akka(s) => s.len(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.now(),
            World::Swim(s) => s.now(),
            World::Zk(s) => s.now(),
            World::Akka(s) => s.now(),
        }
    }

    /// Runs until virtual time `until_ms`.
    pub fn run_until(&mut self, until_ms: u64) {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.run_until(until_ms),
            World::Swim(s) => s.run_until(until_ms),
            World::Zk(s) => s.run_until(until_ms),
            World::Akka(s) => s.run_until(until_ms),
        }
    }

    /// Schedules a fault on a *cluster process index* (auxiliary ensembles
    /// are shielded, as in the paper, which injects faults only on cluster
    /// processes).
    pub fn schedule_cluster_fault(&mut self, at: u64, fault: Fault) {
        let off = self.cluster_offset();
        let shifted = match fault {
            Fault::Crash(i) => Fault::Crash(i + off),
            Fault::IngressDrop(i, p) => Fault::IngressDrop(i + off, p),
            Fault::EgressDrop(i, p) => Fault::EgressDrop(i + off, p),
            Fault::BlackholePair(a, b) => Fault::BlackholePair(a + off, b + off),
            Fault::ClearBlackholePair(a, b) => Fault::ClearBlackholePair(a + off, b + off),
            Fault::Partition(g) => Fault::Partition(g.into_iter().map(|i| i + off).collect()),
        };
        match self {
            World::Rapid(s) | World::RapidC(s) => s.schedule_fault(at, shifted),
            World::Swim(s) => s.schedule_fault(at, shifted),
            World::Zk(s) => s.schedule_fault(at, shifted),
            World::Akka(s) => s.schedule_fault(at, shifted),
        }
    }

    /// The current cluster-size observation of each live cluster process
    /// (`None` while a process has no view).
    pub fn observations(&self) -> Vec<Option<f64>> {
        fn collect<A: rapid_sim::Actor>(s: &Simulation<A>, off: usize) -> Vec<Option<f64>> {
            (off..s.len())
                .filter(|&i| !s.net.is_crashed(i))
                .map(|i| s.actor(i).sample())
                .collect()
        }
        let off = self.cluster_offset();
        match self {
            World::Rapid(s) | World::RapidC(s) => collect(s, off),
            World::Swim(s) => collect(s, off),
            World::Zk(s) => collect(s, off),
            World::Akka(s) => collect(s, off),
        }
    }

    /// Whether every live cluster process currently reports exactly
    /// `target` members.
    pub fn all_report(&self, target: usize) -> bool {
        let obs = self.observations();
        !obs.is_empty()
            && obs
                .iter()
                .all(|o| matches!(o, Some(v) if (v - target as f64).abs() < 0.5))
    }

    /// Runs until every live cluster process reports `target`, checking
    /// once per virtual second. Returns the convergence time.
    pub fn converge(&mut self, target: usize, max_ms: u64) -> Option<u64> {
        let deadline = self.now() + max_ms;
        while self.now() < deadline {
            let next = (self.now() + 1_000).min(deadline);
            self.run_until(next);
            if self.all_report(target) {
                return Some(self.now());
            }
        }
        None
    }

    /// All per-second cluster-size samples collected so far (actor indices
    /// are raw; subtract [`World::cluster_offset`] for process numbering).
    pub fn samples(&self) -> &[Sample] {
        match self {
            World::Rapid(s) | World::RapidC(s) => s.samples(),
            World::Swim(s) => s.samples(),
            World::Zk(s) => s.samples(),
            World::Akka(s) => s.samples(),
        }
    }

    /// Per-second `(bytes_in, bytes_out)` rates of every cluster process,
    /// skipping each process' first `skip_secs` seconds (e.g. to exclude
    /// bootstrap traffic from a steady-state measurement).
    pub fn per_second_rates(&self, skip_secs: usize) -> Vec<(u64, u64)> {
        fn collect<A: rapid_sim::Actor>(
            s: &Simulation<A>,
            off: usize,
            skip: usize,
        ) -> Vec<(u64, u64)> {
            let mut v = Vec::new();
            for i in off..s.len() {
                v.extend(s.traffic(i).per_second.iter().skip(skip).copied());
            }
            v
        }
        let off = self.cluster_offset();
        match self {
            World::Rapid(s) | World::RapidC(s) => collect(s, off, skip_secs),
            World::Swim(s) => collect(s, off, skip_secs),
            World::Zk(s) => collect(s, off, skip_secs),
            World::Akka(s) => collect(s, off, skip_secs),
        }
    }

    /// Per-process convergence times: the first instant each cluster
    /// process reported `target` (relative to experiment start).
    pub fn per_process_convergence(&self, target: usize) -> Vec<f64> {
        let off = self.cluster_offset();
        let mut first: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for s in self.samples() {
            if s.actor >= off && (s.value - target as f64).abs() < 0.5 {
                first.entry(s.actor).or_insert(s.t_ms);
            }
        }
        first.values().map(|&t| t as f64 / 1_000.0).collect()
    }

    /// Distinct cluster sizes reported across all samples (Table 1).
    pub fn unique_sizes(&self) -> usize {
        rapid_sim::series::unique_values(self.samples())
    }
}

/// Aggregates a sample timeseries into per-second rows of
/// `(t_s, min, median, max, distinct)` over cluster processes.
pub fn aggregate_timeseries(samples: &[Sample], offset: usize) -> Vec<(u64, f64, f64, f64, usize)> {
    use std::collections::BTreeMap;
    let mut by_t: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for s in samples {
        if s.actor >= offset {
            by_t.entry(s.t_ms / 1_000).or_default().push(s.value);
        }
    }
    by_t.into_iter()
        .map(|(t, mut vs)| {
            vs.sort_by(|a, b| a.total_cmp(b));
            let distinct = {
                let mut d = vs.iter().map(|v| v.round() as i64).collect::<Vec<_>>();
                d.dedup();
                d.len()
            };
            (t, vs[0], vs[vs.len() / 2], vs[vs.len() - 1], distinct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default() {
        let a = Args { full: false, seed: 1 };
        assert!(!a.full);
    }

    #[test]
    fn worlds_bootstrap_small() {
        for kind in [
            SystemKind::Rapid,
            SystemKind::Memberlist,
            SystemKind::AkkaLike,
        ] {
            let mut w = World::bootstrap(kind, 15, 3);
            let t = w.converge(15, 180_000);
            assert!(t.is_some(), "{} must converge", kind.label());
        }
    }

    #[test]
    fn centralized_worlds_bootstrap_small() {
        for kind in [SystemKind::ZooKeeper, SystemKind::RapidC] {
            let mut w = World::bootstrap(kind, 10, 4);
            let t = w.converge(10, 240_000);
            assert!(t.is_some(), "{} must converge", kind.label());
            assert_eq!(w.cluster_offset(), 3);
        }
    }

    #[test]
    fn cluster_fault_indices_are_offset() {
        let mut w = World::bootstrap(SystemKind::ZooKeeper, 8, 5);
        w.converge(8, 240_000).expect("bootstrap");
        // Crash cluster process 0 (actor 3).
        w.schedule_cluster_fault(w.now() + 100, Fault::Crash(0));
        let t = w.converge(7, 120_000);
        assert!(t.is_some(), "crashed client must be expired");
    }

    #[test]
    fn aggregate_timeseries_shapes() {
        let samples = vec![
            Sample { t_ms: 1_000, actor: 0, value: 3.0 },
            Sample { t_ms: 1_200, actor: 1, value: 5.0 },
            Sample { t_ms: 2_000, actor: 0, value: 5.0 },
        ];
        let rows = aggregate_timeseries(&samples, 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (1, 3.0, 5.0, 5.0, 2));
    }
}
