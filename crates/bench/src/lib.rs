//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§7) or proof section (§8). Runs are scaled down by
//! default so the full suite finishes on a laptop; pass `--full` (or set
//! `RAPID_BENCH_FULL=1`) for paper-scale parameters. All runs are
//! deterministic in `--seed`.
//!
//! The multi-system deployment harness ([`World`], [`SystemKind`]) lives
//! in `rapid-scenario` since the scenario subsystem landed — the failure
//! figures are now thin wrappers over shipped `scenarios/*.toml` files —
//! and is re-exported here for the remaining bespoke binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

pub mod diff;

pub use rapid_scenario::{aggregate_timeseries, SystemKind, World};

/// Command-line arguments shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Paper-scale parameters instead of laptop-scale defaults.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Whether `--seed` was passed explicitly (a shipped scenario's own
    /// seed wins otherwise).
    pub seed_explicit: bool,
}

impl Args {
    /// Parses `--full` and `--seed N` from `std::env::args`, or
    /// `RAPID_BENCH_FULL=1` from the environment.
    pub fn parse() -> Args {
        let mut full = std::env::var("RAPID_BENCH_FULL").map(|v| v == "1").unwrap_or(false);
        let mut seed = 42;
        let mut seed_explicit = false;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--full" => full = true,
                "--seed" => {
                    i += 1;
                    if let Some(v) = argv.get(i).and_then(|s| s.parse().ok()) {
                        seed = v;
                        seed_explicit = true;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        Args { full, seed, seed_explicit }
    }

    /// Applies this invocation to a loaded scenario: an explicit `--seed`
    /// overrides the shipped seed, `--full` applies the scenario's
    /// `[full]` overrides.
    pub fn configure(&self, scenario: &mut rapid_scenario::Scenario) {
        if self.seed_explicit {
            scenario.seed = self.seed;
        }
        if self.full {
            scenario.apply_full();
        }
    }
}

/// Loads a shipped scenario from the workspace `scenarios/` directory by
/// file stem (`"fig08_crashes"`), applying [`Args`] overrides.
pub fn load_scenario(stem: &str, args: &Args) -> rapid_scenario::Scenario {
    let path = format!("{}/../../scenarios/{stem}.toml", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read shipped scenario {path}: {e}"));
    let mut scenario = rapid_scenario::Scenario::from_toml(&text)
        .unwrap_or_else(|e| panic!("shipped scenario {path} is invalid: {e}"));
    args.configure(&mut scenario);
    scenario
}

/// Prints a CSV header + rows to stdout.
pub fn print_csv<R: Display>(header: &str, rows: impl IntoIterator<Item = R>) {
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_default() {
        let a = Args { full: false, seed: 1, seed_explicit: false };
        assert!(!a.full);
    }

    #[test]
    fn shipped_scenarios_load_and_apply_args() {
        let args = Args { full: true, seed: 7, seed_explicit: true };
        let s = load_scenario("fig08_crashes", &args);
        assert_eq!(s.seed, 7);
        assert_eq!(s.n, 1000, "--full must apply the [full] overrides");
        // Without an explicit --seed, the shipped seed wins.
        let args = Args { full: false, seed: 99, seed_explicit: false };
        let s = load_scenario("fig08_crashes", &args);
        assert_eq!(s.seed, 42, "shipped seed must survive a default invocation");
    }
}
