//! Utility: measures wall-clock cost and event counts of bootstrapping
//! one system at one size (`scale_probe <n> <rapid|rc|zk|ml>`), for sizing
//! `--full` runs.
//!
//! `scale_probe --bench-json [path]` instead runs the Rapid hot-path
//! benchmark matrix (N ∈ {256, 1024, 4096, 16384}, K = 10) and writes
//! `BENCH_sim.json` with events/sec for the current build next to the
//! frozen baseline recorded from the seed implementation. Each row also
//! carries a `steady` object: events/sec over a 60 s-virtual window
//! *after* convergence, metered separately so the bootstrap join storm
//! does not skew the steady-state figure.
//!
//! `--no-batch` disables the per-peer wire outbox (one frame per logical
//! message, the pre-batching framing) for A/B runs; batching is on by
//! default, matching production settings.
//!
//! `--threads N` runs the simulation on N worker shards (the engine's
//! conservative-lookahead parallel mode). The trace — and therefore the
//! event count — is bit-identical at any thread count; only wall-clock
//! changes. The JSON records the thread count used.
//!
//! `--timeline FILE` (single-probe mode) turns on the deterministic
//! metrics plane at a 1 s cadence and writes the merged per-node
//! timeline as JSONL — one line per (sample instant, node) in `(t,
//! node)` order, bit-identical at any thread count.
use bench::{SystemKind, World};
use rapid_core::settings::Settings;

/// Baseline recorded from the seed implementation (pre zero-clone
/// refactor) on the reference machine, same workload and seed. The seed
/// build drew per-process-random map iteration orders, so its event count
/// per run varied; these are representative single runs. The N = 16384
/// point postdates the seed, so it has no baseline (`None`).
///
/// Speedups computed against this table are only meaningful on hardware
/// comparable to the reference machine (and on a quiet one — wall-clock
/// measurements are load-sensitive); on other hosts they mix the hardware
/// ratio into the figure. `bench_json` prints a reminder.
const BASELINE: [(usize, Option<(u64, f64)>); 4] = [
    (256, Some((17_777, 0.1538))),
    (1024, Some((81_533, 3.3596))),
    (4096, Some((264_915, 45.2565))),
    (16384, None),
];

/// How much virtual time the steady-state window simulates after
/// convergence (failure-detector probes, batching flushes, no churn).
const STEADY_WINDOW_MS: u64 = 60_000;

struct Probe {
    /// Virtual convergence instant (`None` = did not converge).
    converged_at: Option<u64>,
    /// Events processed up to convergence (bootstrap included).
    boot_events: u64,
    /// Wall-clock seconds up to convergence.
    boot_wall: f64,
    /// Events processed during the post-convergence steady window.
    steady_events: u64,
    /// Wall-clock seconds of the steady window.
    steady_wall: f64,
}

fn events_of(w: &World) -> u64 {
    match w {
        World::Swim(s) => s.events_processed(),
        World::Zk(s) => s.events_processed(),
        World::Rapid(s) | World::RapidC(s) => s.events_processed(),
        World::RapidKv(kw) => kw.sim.events_processed(),
        World::Akka(s) => s.events_processed(),
    }
}

fn probe(
    n: usize,
    kind: SystemKind,
    batch_wire: bool,
    threads: usize,
    sample_ms: u64,
) -> (Probe, Vec<String>) {
    let t0 = std::time::Instant::now();
    let settings = if batch_wire && threads <= 1 && sample_ms == 0 {
        None // Protocol defaults: identical construction path.
    } else if matches!(kind, SystemKind::Rapid | SystemKind::RapidC) {
        Some(Settings {
            batch_wire,
            threads,
            obs_sample_ms: sample_ms,
            ..Settings::default()
        })
    } else {
        // The baselines have no Rapid wire framing or sim settings to tune.
        eprintln!(
            "note: --no-batch/--threads/--timeline only affect the Rapid drivers; ignored for {}",
            kind.label()
        );
        None
    };
    let mut w = World::bootstrap_cfg(kind, n, 42, settings, None)
        .expect("bootstrap world");
    let converged_at = w.converge(n, 1_200_000);
    let boot_events = events_of(&w);
    let boot_wall = t0.elapsed().as_secs_f64();
    // Steady state, separately metered: the join storm skews the
    // bootstrap figure, so sizing `--full` runs (mostly steady time)
    // wants the post-convergence rate.
    let s0 = std::time::Instant::now();
    let now = w.now();
    w.run_until(now + STEADY_WINDOW_MS);
    let timeline = if sample_ms > 0 { w.metrics_dump() } else { Vec::new() };
    let p = Probe {
        converged_at,
        boot_events,
        boot_wall,
        steady_events: events_of(&w) - boot_events,
        steady_wall: s0.elapsed().as_secs_f64(),
    };
    (p, timeline)
}

fn bench_json(path: &str, batch_wire: bool, threads: usize) {
    eprintln!(
        "note: baseline wall-clock was recorded on the reference machine; \
speedups on other hardware (or a loaded machine) mix in the hardware ratio"
    );
    let mut rows = String::new();
    for &(n, baseline) in &BASELINE {
        let (p, _) = probe(n, SystemKind::Rapid, batch_wire, threads, 0);
        assert!(p.converged_at.is_some(), "bootstrap at n={n} must converge");
        let (events, wall) = (p.boot_events, p.boot_wall);
        let rate = events as f64 / wall;
        let steady_rate = p.steady_events as f64 / p.steady_wall.max(1e-9);
        let (base_json, speedup_json) = match baseline {
            Some((base_events, base_wall)) => {
                let base_rate = base_events as f64 / base_wall;
                eprintln!(
                    "n={n}: {events} events in {wall:.4}s = {rate:.0} events/s ({:.2}x baseline), \
                     steady {steady_rate:.0} events/s",
                    rate / base_rate
                );
                (
                    format!(
                        "{{\"events\": {base_events}, \"wall_s\": {base_wall:.4}, \
\"events_per_s\": {base_rate:.1}}}"
                    ),
                    format!("{:.2}", rate / base_rate),
                )
            }
            None => {
                eprintln!(
                    "n={n}: {events} events in {wall:.4}s = {rate:.0} events/s (no seed baseline), \
                     steady {steady_rate:.0} events/s"
                );
                ("null".to_string(), "null".to_string())
            }
        };
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"n\": {n}, \"k\": 10, \"workload\": \"bootstrap-to-convergence\", \
\"baseline\": {base_json}, \
\"current\": {{\"events\": {events}, \"wall_s\": {wall:.4}, \"events_per_s\": {rate:.1}}}, \
\"steady\": {{\"events\": {}, \"wall_s\": {:.4}, \"events_per_s\": {steady_rate:.1}, \
\"window_virtual_ms\": {STEADY_WINDOW_MS}}}, \
\"speedup_events_per_s\": {speedup_json}}}",
            p.steady_events, p.steady_wall
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"rapid-sim bootstrap events/sec\",\n  \
\"note\": \"baseline = seed implementation before the zero-clone refactor (interned endpoints, Arc fan-out, index-routed engine, deterministic hashing, shared view caches); N=16384 postdates the seed and has no baseline; regenerate with `cargo run --release -p bench --bin scale_probe -- --bench-json`\",\n  \
\"batch_wire\": {batch_wire},\n  \"threads\": {threads},\n  \"seed\": 42,\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(path, json).expect("write BENCH_sim.json");
    eprintln!("wrote {path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let batch_wire = !args.iter().any(|a| a == "--no-batch");
    args.retain(|a| a != "--no-batch");
    let mut threads = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        threads = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .filter(|&t| t >= 1)
            .expect("--threads needs a positive integer");
        args.drain(pos..=pos + 1);
    }
    let mut timeline_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--timeline") {
        timeline_path = Some(
            args.get(pos + 1)
                .cloned()
                .expect("--timeline needs a file path"),
        );
        args.drain(pos..=pos + 1);
    }
    if args.get(1).map(|s| s.as_str()) == Some("--bench-json") {
        let path = args.get(2).map(|s| s.as_str()).unwrap_or("BENCH_sim.json");
        bench_json(path, batch_wire, threads);
        return;
    }
    let n: usize = args
        .get(1)
        .expect("usage: scale_probe <n> [system] [--no-batch] [--threads N] [--timeline FILE]")
        .parse()
        .unwrap();
    let kind = match args.get(2).map(|s| s.as_str()).unwrap_or("rapid") {
        "zk" => SystemKind::ZooKeeper,
        "ml" => SystemKind::Memberlist,
        "rc" => SystemKind::RapidC,
        _ => SystemKind::Rapid,
    };
    let sample_ms = if timeline_path.is_some() { 1_000 } else { 0 };
    let (p, timeline) = probe(n, kind, batch_wire, threads, sample_ms);
    if let Some(path) = &timeline_path {
        let mut out = timeline.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        std::fs::write(path, out).expect("write timeline");
        eprintln!("wrote {path}");
    }
    eprintln!(
        "{} n={}: virtual={:?}s wall={:.4}s events={} steady={:.0} events/s threads={}",
        kind.label(),
        n,
        p.converged_at.map(|x| x / 1000),
        p.boot_wall,
        p.boot_events,
        p.steady_events as f64 / p.steady_wall.max(1e-9),
        threads
    );
}
