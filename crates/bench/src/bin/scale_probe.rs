//! Utility: measures wall-clock cost and event counts of bootstrapping
//! one system at one size (`scale_probe <n> <rapid|rc|zk|ml>`), for sizing
//! `--full` runs.
use bench::{SystemKind, World};
fn main() {
    let n: usize = std::env::args().nth(1).unwrap().parse().unwrap();
    let kind = match std::env::args().nth(2).unwrap().as_str() {
        "zk" => SystemKind::ZooKeeper,
        "ml" => SystemKind::Memberlist,
        "rc" => SystemKind::RapidC,
        _ => SystemKind::Rapid,
    };
    let t0 = std::time::Instant::now();
    let mut w = World::bootstrap(kind, n, 42);
    let t = w.converge(n, 1_200_000);
    let events = match &w { bench::World::Swim(s) => s.events_processed(), bench::World::Zk(s) => s.events_processed(), bench::World::Rapid(s)|bench::World::RapidC(s) => s.events_processed(), bench::World::Akka(s) => s.events_processed() };
    eprintln!("{} n={}: virtual={:?}s wall={:?} events={}", kind.label(), n, t.map(|x| x/1000), t0.elapsed(), events);
}
