//! **Figure 7** — The first 150 seconds of a bootstrap: every process logs
//! its observed cluster size each second.
//!
//! Paper result: Rapid jumps 1 → 5 → N in very few view changes;
//! Memberlist crawls up as push-pull rounds spread the membership;
//! ZooKeeper's clients each see a long, distinct sequence of sizes
//! (eventually consistent watches).
//!
//! Output: one aggregated row per (system, second): the min / median /
//! max observed size and the count of distinct sizes at that instant.

use bench::{aggregate_timeseries, print_csv, Args, SystemKind, World};

fn main() {
    let args = Args::parse();
    let n = if args.full { 2000 } else { 500 };
    let window_ms = 150_000;
    let mut rows = Vec::new();
    for kind in SystemKind::bootstrap_set() {
        let mut world = World::bootstrap(kind, n, args.seed);
        world.run_until(window_ms);
        let final_obs = world.observations();
        let done = final_obs
            .iter()
            .filter(|o| matches!(o, Some(v) if (*v - n as f64).abs() < 0.5))
            .count();
        eprintln!(
            "fig07: {} n={}: {}/{} processes converged within {}s",
            kind.label(),
            n,
            done,
            final_obs.len(),
            window_ms / 1000
        );
        for (t, min, median, max, distinct) in
            aggregate_timeseries(world.samples(), world.cluster_offset())
        {
            rows.push(format!(
                "{},{},{},{},{},{}",
                kind.label(),
                t,
                min,
                median,
                max,
                distinct
            ));
        }
    }
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
