//! Benchmarks the `rapid-route` KV data plane on the simulator:
//! steady-state operation throughput plus the cost of a rebalance
//! (bytes moved, partitions copied, unavailability window) under crash
//! and partition faults, at N = 64 / 256 / 1024.
//!
//! ```text
//! cargo run --release -p bench --bin route_bench           # full sweep
//! cargo run --release -p bench --bin route_bench -- --quick
//! cargo run --release -p bench --bin route_bench -- --no-batch   # A/B: wire batching off
//! cargo run --release -p bench --bin route_bench -- --via-coordinator  # legacy routing
//! cargo run --release -p bench --bin route_bench -- --threads 4  # sharded sim engine
//! cargo run --release -p bench --bin route_bench -- --shards 4   # record kv_shards
//! cargo run --release -p bench --bin route_bench -- --bench-json > BENCH_route.json
//! cargo run --release -p bench --bin route_bench -- --quick --timeline t.jsonl
//! ```
//!
//! `--timeline FILE` turns on the deterministic metrics plane at a 1 s
//! cadence and writes each scale's per-node timeline (captured after
//! the steady workload, before fault injection) as JSONL, scales
//! concatenated in run order. Bit-identical at any `--threads` count.
//!
//! Throughput is wall-clock (how fast the engine pushes data-plane
//! operations end to end, membership traffic included); rebalance
//! metrics are virtual-time and deterministic for a given seed.
//!
//! Methodology note (changed with the smart-client work): all ops are
//! submitted through a co-hosted [`rapid_route::KvClient`] actor — a
//! view-subscribed client that routes each op directly to its partition
//! leader (zero forwarding hops). `--via-coordinator` keeps the legacy
//! architecture as an A/B baseline: the same client machinery, but
//! view-blind and pinned to a fixed coordinator node that forwards
//! server-side, so every op pays an extra wire hop each way.
//! `steady_msgs_per_op_milli` (cluster + client data-plane messages per
//! completed op, x1000) is the headline comparison between the two.
//! Batches are pipelined (one outbox flush; ops sharing a leader share
//! a wire frame) and an op window ends as soon as every submitted op
//! resolved (capped at `OP_WINDOW_MS`). Latency percentiles are
//! *client-observed*. Numbers are not comparable to pre-client
//! BENCH_route.json files; A/B `--no-batch` / `--via-coordinator` on
//! the same build instead.
//!
//! `--shards N` sets `Settings::kv_shards`, the thread-per-core shard
//! count of the *real* runtime's data plane, and stamps it into the
//! JSON so a report is comparable only against runs at the same count.
//! This bench hosts the sans-io actors on the deterministic simulator,
//! where every node is single-threaded by construction — the knob does
//! not change the numbers here, and on a single-core host it cannot
//! improve the real runtime either (see docs/PERF.md). It exists so
//! multi-core hosts can regenerate BENCH_route.json at their real
//! shard count without the diff tool flagging a config mismatch.

use std::time::Instant;

use rapid_core::obs::LatencyHist;
use rapid_core::settings::Settings;
use rapid_route::sim::{KvClusterBuilder, KvSimActor};
use rapid_route::{ClientOp, ClientStats, KvOutcome, KvStats, PlacementConfig};
use rapid_scenario::json::Json;
use rapid_sim::{Fault, Simulation};

const PARTITIONS: u32 = 256;
const REPLICATION: usize = 3;
const KEYS: usize = 1_000;
const OP_WINDOW_MS: u64 = 2_000;

struct FaultResult {
    faults: usize,
    detect_ms: u64,
    unavailability_ms: u64,
    bytes_moved: u64,
    partitions_moved: u64,
    handoffs: u64,
    lost: u64,
    repairs: u64,
    repair_bytes: u64,
    /// How long new owners waited for incoming partition state (virtual
    /// ms), merged across the cluster: p50/p99/max.
    handoff_wait: (u64, u64, u64),
}

fn spec() -> PlacementConfig {
    PlacementConfig {
        partitions: PARTITIONS,
        replication: REPLICATION,
    }
}

fn aggregate(sim: &Simulation<KvSimActor>) -> KvStats {
    let mut stats = KvStats::default();
    for i in 0..sim.len() {
        if sim.actor(i).is_client() {
            continue;
        }
        stats.absorb(sim.actor(i).kv_stats());
    }
    stats
}

/// The co-hosted client actor driving the workload.
fn client_idx(sim: &Simulation<KvSimActor>) -> usize {
    (0..sim.len())
        .find(|&i| sim.actor(i).is_client())
        .expect("bench clusters host a client")
}

fn client_stats(sim: &Simulation<KvSimActor>) -> ClientStats {
    *sim.actor(client_idx(sim)).client_stats().expect("client actor")
}

/// Runs a batch of ops through the client actor and returns the
/// outcomes. The batch is submitted pipelined (one outbox flush) and the
/// window ends as soon as every op resolved, capped at [`OP_WINDOW_MS`].
fn batch(sim: &mut Simulation<KvSimActor>, ops: &[(String, Option<String>)]) -> Vec<KvOutcome> {
    let via = client_idx(sim);
    let now = sim.now();
    let client_ops: Vec<ClientOp<'_>> = ops
        .iter()
        .map(|(key, val)| match val {
            Some(v) => ClientOp::Put { key, val: v },
            None => ClientOp::Get { key },
        })
        .collect();
    let reqs: Vec<u64> = sim.with_actor(via, |a, out| a.client_submit_ops(&client_ops, now, out));
    let min_req = reqs.first().copied().unwrap_or(0);
    let deadline = now + OP_WINDOW_MS;
    while sim.now() < deadline {
        let resolved = sim
            .actor(via)
            .completed
            .iter()
            .filter(|(r, _)| *r >= min_req)
            .count();
        if resolved >= reqs.len() {
            break;
        }
        let next = (sim.now() + 25).min(deadline);
        sim.run_until(next);
    }
    let completed = std::mem::take(&mut sim.actor_mut(via).completed);
    reqs.iter()
        .map(|req| {
            completed
                .iter()
                .find(|(r, _)| r == req)
                .map(|(_, o)| o.clone())
                .unwrap_or(KvOutcome::Failed)
        })
        .collect()
}

fn key(i: usize) -> String {
    format!("bench-{i:06}")
}

fn load_keys(sim: &mut Simulation<KvSimActor>, keys: usize) -> usize {
    let mut acked = 0;
    for chunk in (0..keys).collect::<Vec<_>>().chunks(500) {
        let ops: Vec<_> = chunk
            .iter()
            .map(|&i| (key(i), Some(format!("val-{i:06}"))))
            .collect();
        acked += batch(sim, &ops)
            .iter()
            .filter(|o| matches!(o, KvOutcome::Acked { .. }))
            .count();
    }
    acked
}

/// Members outside the faulted set all report `target` (a partitioned
/// minority cannot learn it was kicked, so it is excluded from the
/// detection predicate — the majority serving traffic is what matters).
fn converged(sim: &Simulation<KvSimActor>, target: usize, faulted: &[usize]) -> bool {
    use rapid_sim::Actor;
    let mut seen = 0;
    for i in 0..sim.len() {
        if sim.net.is_crashed(i) || faulted.contains(&i) {
            continue;
        }
        match sim.actor(i).sample() {
            Some(v) if (v - target as f64).abs() < 0.5 => seen += 1,
            Some(_) => return false,
            None => {}
        }
    }
    seen > 0
}

/// Injects a fault, then measures membership detection and the window
/// until every loaded key reads back `Found` again.
fn measure_fault(
    sim: &mut Simulation<KvSimActor>,
    keys: usize,
    survivors: usize,
    inject: impl FnOnce(&mut Simulation<KvSimActor>) -> Vec<usize>,
) -> FaultResult {
    let before = aggregate(sim);
    let fault_at = sim.now();
    let faulted = inject(sim);

    // Detection: run until the survivors converge on the shrunk view.
    let detect_deadline = fault_at + 600_000;
    while sim.now() < detect_deadline && !converged(sim, survivors, &faulted) {
        let next = (sim.now() + 1_000).min(detect_deadline);
        sim.run_until(next);
    }
    let detect_ms = sim.now() - fault_at;

    // Availability: sweep all keys until every one reads back.
    let avail_deadline = sim.now() + 600_000;
    let mut unavailability_ms = None;
    while sim.now() < avail_deadline {
        let ops: Vec<_> = (0..keys).map(|i| (key(i), None)).collect();
        let all_found = batch(sim, &ops)
            .iter()
            .all(|o| matches!(o, KvOutcome::Found { .. }));
        if all_found {
            unavailability_ms = Some(sim.now() - fault_at);
            break;
        }
    }
    let after = aggregate(sim);
    let mut handoff_hist = LatencyHist::new();
    for i in 0..sim.len() {
        if sim.actor(i).is_client() {
            continue;
        }
        handoff_hist.merge(sim.actor(i).kv().handoff_hist());
        handoff_hist.merge(sim.actor(i).kv().repair_hist());
    }
    let (h50, h99, _) = handoff_hist.percentiles();
    FaultResult {
        faults: faulted.len(),
        detect_ms,
        unavailability_ms: unavailability_ms.unwrap_or(u64::MAX),
        bytes_moved: after.bytes_moved - before.bytes_moved,
        partitions_moved: after.partitions_moved - before.partitions_moved,
        handoffs: after.handoffs_sent - before.handoffs_sent,
        lost: after.partitions_lost - before.partitions_lost,
        repairs: after.repairs_triggered - before.repairs_triggered,
        repair_bytes: after.repair_bytes - before.repair_bytes,
        handoff_wait: (h50, h99, handoff_hist.max()),
    }
}

fn fault_json(r: &FaultResult) -> Json {
    Json::obj(vec![
        ("faults", Json::uint(r.faults as u64)),
        ("detect_ms", Json::uint(r.detect_ms)),
        ("unavailability_ms", Json::uint(r.unavailability_ms)),
        ("bytes_moved", Json::uint(r.bytes_moved)),
        ("partitions_moved", Json::uint(r.partitions_moved)),
        ("handoffs", Json::uint(r.handoffs)),
        ("partitions_lost", Json::uint(r.lost)),
        ("repairs_triggered", Json::uint(r.repairs)),
        ("repair_bytes", Json::uint(r.repair_bytes)),
        ("handoff_wait_p50_ms", Json::uint(r.handoff_wait.0)),
        ("handoff_wait_p99_ms", Json::uint(r.handoff_wait.1)),
        ("handoff_wait_max_ms", Json::uint(r.handoff_wait.2)),
    ])
}

fn settings(batch_wire: bool, threads: usize, shards: usize, sample_ms: u64) -> Settings {
    Settings {
        batch_wire,
        threads,
        kv_shards: shards,
        obs_sample_ms: sample_ms,
        // Pipeline whole 500-op rounds: the bench measures the routing
        // fabric, not client-side queuing.
        client_window: 512,
        ..Settings::default()
    }
}

fn build(
    n: usize,
    seed: u64,
    batch_wire: bool,
    threads: usize,
    shards: usize,
    sample_ms: u64,
    via: bool,
) -> Simulation<KvSimActor> {
    KvClusterBuilder::new(n, spec())
        .seed(seed)
        .settings(settings(batch_wire, threads, shards, sample_ms))
        .op_timeout_ms(OP_WINDOW_MS - 500)
        .clients(1)
        .clients_via_seed(via)
        .build_static()
}

fn run_scale(
    n: usize,
    seed: u64,
    batch_wire: bool,
    threads: usize,
    shards: usize,
    sample_ms: u64,
    via: bool,
) -> (Json, Vec<String>) {
    // Steady state + throughput.
    let mut sim = build(n, seed, batch_wire, threads, shards, sample_ms, via);
    sim.run_until(2_000);
    let acked = load_keys(&mut sim, KEYS);

    // Timed mixed workload: alternate get/overwrite batches. Snapshot
    // counters around it so the steady-state anti-entropy overhead
    // (digest chatter with no divergence to fix) is reported.
    let steady_before = aggregate(&sim);
    let client_before = client_stats(&sim);
    let t0 = Instant::now();
    let mut ops_done = 0usize;
    // 20 completion-bounded rounds (10k ops): long enough that wall
    // jitter on a shared box does not swamp the measurement.
    for round in 0..20 {
        let ops: Vec<_> = (0..500)
            .map(|i| {
                let k = key((round * 137 + i) % KEYS);
                if i % 2 == 0 {
                    (k, None)
                } else {
                    (k, Some(format!("re-{round}-{i}")))
                }
            })
            .collect();
        ops_done += batch(&mut sim, &ops).len();
    }
    let wall = t0.elapsed().as_secs_f64();
    let ops_per_sec = ops_done as f64 / wall.max(1e-9);
    // Per-op latency (virtual ms, *client-observed*: queuing, routing,
    // retries and backoffs included) over everything submitted so far.
    let ci = client_idx(&sim);
    let op_hist = sim.actor(ci).client().expect("client actor").op_hist().clone();
    let (op_p50, op_p99, op_p999) = op_hist.percentiles();
    // Timeline snapshot of the loaded, steady cluster — before fault
    // injection churns it. The workload above is completion-bounded and
    // spans well under one sample interval of virtual time, so idle the
    // sim to the next sample boundary first; otherwise the ops it just
    // pushed would sit in a never-sampled partial interval.
    let timeline = match sim.now().checked_div(sample_ms) {
        Some(intervals) => {
            sim.run_until((intervals + 1) * sample_ms);
            rapid_route::sim::timeline_lines(&sim)
        }
        None => Vec::new(),
    };
    let steady_after = aggregate(&sim);
    let client_after = client_stats(&sim);
    let steady_repairs = steady_after.repairs_triggered - steady_before.repairs_triggered;
    let steady_repair_bytes = steady_after.repair_bytes - steady_before.repair_bytes;
    let steady_msgs = steady_after.msgs_sent - steady_before.msgs_sent;
    let steady_frames = steady_after.frames_sent - steady_before.frames_sent;
    let steady_wire_bytes = steady_after.wire_bytes - steady_before.wire_bytes;
    let steady_client_msgs = client_after.msgs_sent - client_before.msgs_sent;
    let steady_client_shed = client_after.shed - client_before.shed;
    let steady_client_retries = client_after.retries - client_before.retries;
    // The routing-efficiency headline: every data-plane message the
    // steady window put on the wire (cluster forwards, replication,
    // verdicts, plus the client's own sends), per completed op. The
    // zero-hop path drops the coordinator forward/reply pair, so smart
    // clients beat `--via-coordinator` here.
    let steady_msgs_per_op_milli = ((steady_msgs + steady_client_msgs) * 1000)
        .checked_div(ops_done as u64)
        .unwrap_or(0);

    // Crash ~1.5% of the cluster (at least one, well under RF).
    let crash_count = (n / 64).max(1);
    let crash = measure_fault(&mut sim, KEYS, n - crash_count, |sim| {
        let at = sim.now() + 10;
        // Spread victims across the id space.
        let victims: Vec<usize> = (0..crash_count).map(|c| 1 + c * (n / crash_count)).collect();
        for &v in &victims {
            sim.schedule_fault(at, Fault::Crash(v));
        }
        sim.run_until(at + 1);
        victims
    });

    // Fresh cluster for the partition fault (a clean baseline).
    let mut sim = build(n, seed ^ 0x9E37, batch_wire, threads, shards, sample_ms, via);
    sim.run_until(2_000);
    load_keys(&mut sim, KEYS);
    let part_count = (n / 64).max(1);
    let partition = measure_fault(&mut sim, KEYS, n - part_count, |sim| {
        let group: Vec<usize> = (0..part_count).map(|c| 2 + c * 3).collect();
        let at = sim.now() + 10;
        sim.schedule_fault(at, Fault::Partition(group.clone()));
        sim.run_until(at + 1);
        group
    });

    let msgs_per_frame = steady_msgs as f64 / steady_frames.max(1) as f64;
    eprintln!(
        "n={n}: {acked}/{KEYS} loaded, {ops_per_sec:.0} ops/s wall, \
         op latency p50={op_p50} p99={op_p99} p999={op_p999} (virtual ms, client-observed), \
         {msgs_per_frame:.2} kv msgs/frame, {:.2} msgs/op, \
         shed={steady_client_shed} retries={steady_client_retries}, \
         crash: {}B moved / {}ms unavailable, partition: {}B moved / {}ms unavailable",
        steady_msgs_per_op_milli as f64 / 1000.0,
        crash.bytes_moved, crash.unavailability_ms, partition.bytes_moved,
        partition.unavailability_ms
    );

    let row = Json::obj(vec![
        ("n", Json::uint(n as u64)),
        ("load_acked", Json::uint(acked as u64)),
        ("steady_ops_per_sec_wall", Json::Float(ops_per_sec)),
        ("op_latency_count", Json::uint(op_hist.count())),
        ("op_latency_p50_ms", Json::uint(op_p50)),
        ("op_latency_p99_ms", Json::uint(op_p99)),
        ("op_latency_p999_ms", Json::uint(op_p999)),
        ("op_latency_max_ms", Json::uint(op_hist.max())),
        ("steady_repairs", Json::uint(steady_repairs)),
        ("steady_repair_bytes", Json::uint(steady_repair_bytes)),
        ("steady_kv_msgs", Json::uint(steady_msgs)),
        ("steady_kv_frames", Json::uint(steady_frames)),
        ("steady_kv_wire_bytes", Json::uint(steady_wire_bytes)),
        (
            "steady_kv_msgs_per_frame_milli",
            Json::uint((steady_msgs * 1000).checked_div(steady_frames).unwrap_or(0)),
        ),
        ("steady_client_msgs", Json::uint(steady_client_msgs)),
        ("steady_client_shed", Json::uint(steady_client_shed)),
        ("steady_client_retries", Json::uint(steady_client_retries)),
        ("steady_msgs_per_op_milli", Json::uint(steady_msgs_per_op_milli)),
        ("crash", fault_json(&crash)),
        ("partition", fault_json(&partition)),
    ]);
    (row, timeline)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_out = args.iter().any(|a| a == "--bench-json");
    let batch_wire = !args.iter().any(|a| a == "--no-batch");
    let via = args.iter().any(|a| a == "--via-coordinator");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .map(|pos| {
            args.get(pos + 1)
                .and_then(|s| s.parse().ok())
                .filter(|&t: &usize| t >= 1)
                .expect("--threads needs a positive integer")
        })
        .unwrap_or(1);
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .map(|pos| {
            args.get(pos + 1)
                .and_then(|s| s.parse().ok())
                .filter(|&t: &usize| t >= 1 && t <= PARTITIONS as usize)
                .expect("--shards needs a positive integer no larger than the partition count")
        })
        .unwrap_or(1);
    let timeline_path = args
        .iter()
        .position(|a| a == "--timeline")
        .map(|pos| {
            args.get(pos + 1)
                .cloned()
                .expect("--timeline needs a file path")
        });
    let sample_ms = if timeline_path.is_some() { 1_000 } else { 0 };
    let scales: &[usize] = if quick { &[64] } else { &[64, 256, 1024] };

    let mut results = Vec::new();
    let mut timeline = Vec::new();
    for (i, &n) in scales.iter().enumerate() {
        let (row, lines) =
            run_scale(n, 0xB0 + i as u64, batch_wire, threads, shards, sample_ms, via);
        results.push(row);
        timeline.extend(lines);
    }
    if let Some(path) = &timeline_path {
        let mut out = timeline.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        std::fs::write(path, out).expect("write timeline");
        eprintln!("wrote {path}");
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("route_bench".into())),
        ("batch_wire", Json::Bool(batch_wire)),
        ("via_coordinator", Json::Bool(via)),
        ("threads", Json::uint(threads as u64)),
        ("shards", Json::uint(shards as u64)),
        ("partitions", Json::uint(PARTITIONS as u64)),
        ("replication", Json::uint(REPLICATION as u64)),
        ("keys", Json::uint(KEYS as u64)),
        ("op_window_ms", Json::uint(OP_WINDOW_MS)),
        ("results", Json::Array(results)),
    ]);
    if json_out {
        println!("{}", doc.to_pretty(2));
    }
}
