//! **Figure 1** — Motivation: Akka-like, ZooKeeper and Memberlist under
//! 80% ingress packet loss at 1% of processes; Rapid added for contrast.
//!
//! Paper result: Akka Cluster is unstable (conflicting rumors even remove
//! benign processes); Memberlist and ZooKeeper resist removing the faulty
//! processes but stay unstable/inconsistent for long periods. Rapid (§7,
//! Figure 10) detects the cut and stabilises.
//!
//! Output: aggregated per-second view sizes plus per-system stability
//! metrics over the fault window.

use bench::{aggregate_timeseries, print_csv, Args, SystemKind, World};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let faulty = (n / 100).max(1); // 1% of processes
    let systems = [
        SystemKind::AkkaLike,
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        // Akka is run at a smaller scale, as in the paper (it failed to
        // bootstrap beyond ~500 processes).
        let n_sys = if kind == SystemKind::AkkaLike { (n * 2) / 5 } else { n };
        let mut world = World::bootstrap(kind, n_sys, args.seed);
        let max = if args.full { 1_200_000 } else { 600_000 };
        let start = world.converge(n_sys, max).unwrap_or_else(|| world.now());
        // Inject 80% ingress loss at 1% of cluster processes.
        let n_faulty = if kind == SystemKind::AkkaLike {
            (n_sys / 100).max(1)
        } else {
            faulty
        };
        for i in 0..n_faulty {
            world.schedule_cluster_fault(start + 5_000, Fault::IngressDrop(i, 0.8));
        }
        let fault_window = 300_000;
        world.run_until(start + 5_000 + fault_window);
        // Stability metrics over the fault window.
        let offset = world.cluster_offset();
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms > start + 5_000)
            .copied()
            .collect();
        let distinct = rapid_sim::series::unique_values(&window);
        eprintln!(
            "fig01: {} n={} faulty={}: {} distinct sizes during fault window",
            kind.label(),
            n_sys,
            n_faulty,
            distinct
        );
        summary.push(format!("{},{},{},{}", kind.label(), n_sys, n_faulty, distinct));
        for (t, min, median, max, d) in aggregate_timeseries(&window, offset) {
            rows.push(format!(
                "{},{},{},{},{},{}",
                kind.label(),
                t,
                min,
                median,
                max,
                d
            ));
        }
    }
    println!("# summary");
    print_csv("system,n,faulty,distinct_sizes_during_fault", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
