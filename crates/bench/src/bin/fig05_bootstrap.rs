//! **Figure 5** — Bootstrap convergence: time for all processes to report
//! a cluster size of N, for ZooKeeper, Memberlist, Rapid-C and Rapid.
//!
//! Paper result (N=2000): Rapid bootstraps 2-2.32x faster than Memberlist
//! and 3.23-5.81x faster than ZooKeeper; ZooKeeper's latency grows ~4x
//! from N=1000 to N=2000 (watch herd).
//!
//! Default: N ∈ {100, 150, 200} × 2 repetitions. `--full`: N ∈ {1000,
//! 1500, 2000} × 5 repetitions (paper scale).

use bench::{print_csv, Args, SystemKind, World};

fn main() {
    let args = Args::parse();
    let (sizes, reps): (Vec<usize>, u64) = if args.full {
        (vec![1000, 1500, 2000], 5)
    } else {
        (vec![200, 350, 500], 2)
    };
    let mut rows = Vec::new();
    for kind in SystemKind::bootstrap_set() {
        for &n in &sizes {
            for rep in 0..reps {
                let seed = args.seed + rep * 1_000;
                let mut world = World::bootstrap(kind, n, seed);
                let max = if args.full { 1_200_000 } else { 600_000 };
                let t = world.converge(n, max);
                let latency_s = t.map(|ms| ms as f64 / 1_000.0);
                eprintln!(
                    "fig05: {} n={} rep={} -> {:?} s",
                    kind.label(),
                    n,
                    rep,
                    latency_s
                );
                rows.push(format!(
                    "{},{},{},{}",
                    kind.label(),
                    n,
                    rep,
                    latency_s.map(|v| v.to_string()).unwrap_or_else(|| "timeout".into())
                ));
            }
        }
    }
    print_csv("system,n,rep,bootstrap_latency_s", rows);
}
