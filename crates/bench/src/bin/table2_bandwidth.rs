//! **Table 2** — Per-process network bandwidth (mean / p99 / max KB/s,
//! received and transmitted) during the crash-failure experiment.
//!
//! Paper result (N=1000, KB/s received/transmitted):
//!
//! | System     | Mean        | p99          | max          |
//! |------------|-------------|--------------|--------------|
//! | ZooKeeper  | 0.43 / 0.01 | 17.52 / 0.33 | 38.86 / 0.67 |
//! | Memberlist | 0.54 / 0.64 | 5.61 / 6.40  | 7.36 / 8.04  |
//! | Rapid      | 0.71 / 0.71 | 3.66 / 3.72  | 9.56 / 11.37 |
//!
//! Rapid's constant K-degree monitoring costs about the same as
//! Memberlist's gossip; ZooKeeper clients are cheap on average but the
//! ensemble pushes large member lists at view changes.

use bench::{print_csv, Args, SystemKind, World};
use rapid_sim::series::{mean, percentile};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    for kind in systems {
        let mut world = World::bootstrap(kind, n, args.seed);
        let max_ms = if args.full { 1_200_000 } else { 600_000 };
        let start = world.converge(n, max_ms).expect("bootstrap must converge");
        let crash_at = start + 10_000;
        for i in 0..10 {
            world.schedule_cluster_fault(crash_at, Fault::Crash(1 + i * (n / 10 - 1)));
        }
        world.run_until(crash_at + 120_000);
        // Per-second rates over the steady + failure window only (skip the
        // bootstrap traffic, as the paper measures the crash experiment).
        let skip_secs = (crash_at / 1_000).saturating_sub(10) as usize;
        let mut rx_kbs = Vec::new();
        let mut tx_kbs = Vec::new();
        for (bin, bout) in world.per_second_rates(skip_secs) {
            rx_kbs.push(bin as f64 / 1024.0);
            tx_kbs.push(bout as f64 / 1024.0);
        }
        let row = format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            kind.label(),
            mean(&rx_kbs),
            mean(&tx_kbs),
            percentile(&rx_kbs, 99.0),
            percentile(&tx_kbs, 99.0),
            percentile(&rx_kbs, 100.0),
            percentile(&tx_kbs, 100.0),
        );
        eprintln!("table2: {row}");
        rows.push(row);
    }
    print_csv(
        "system,mean_rx_kbs,mean_tx_kbs,p99_rx_kbs,p99_tx_kbs,max_rx_kbs,max_tx_kbs",
        rows,
    );
}
