//! **Ablation** — the number of monitoring rings `K` (§4.1 fixes K=10;
//! §8 requires K large enough that the overlay expands and `1 − L/K − λ/d
//! > β`).
//!
//! For each K, measures: the overlay's λ/d and detection bound, the time
//! to detect and cut a 10-node crash, and the monitoring bandwidth.
//! Watermarks scale as H = K−1, L = max(2, 3K/10).

use bench::{print_csv, Args};
use rapid_core::config::{Configuration, Member};
use rapid_core::id::{Endpoint, NodeId};
use rapid_core::settings::Settings;
use rapid_sim::cluster::{all_report, RapidClusterBuilder};
use rapid_sim::series::mean;
use rapid_sim::Fault;
use spectral::{detection_bound, MonitoringGraph};

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let mut rows = Vec::new();
    for k in [4usize, 6, 8, 10, 14] {
        let h = k - 1;
        let l = (3 * k / 10).max(2).min(h);
        // Spectral properties of this K.
        let cfg = Configuration::bootstrap(
            (0..n)
                .map(|i| {
                    Member::new(
                        NodeId::from_u128(i as u128 + 1),
                        Endpoint::new(format!("node-{i}"), 4000),
                    )
                })
                .collect(),
        );
        let ratio = MonitoringGraph::build(&cfg, k)
            .lambda_over_d(400, args.seed)
            .unwrap_or(f64::NAN);
        let bound = detection_bound(l, k, ratio);

        // End-to-end: crash 10, measure convergence + bandwidth.
        let settings = Settings::with_watermarks(k, h, l);
        let mut sim = RapidClusterBuilder::new(n)
            .settings(settings)
            .seed(args.seed)
            .build_static();
        sim.run_until(5_000);
        for i in 0..10 {
            sim.schedule_fault(5_000, Fault::Crash(2 + i * (n / 10 - 1)));
        }
        let done = sim.run_until_pred(300_000, |s| all_report(s, n - 10));
        let detect = done.map(|d| (d - 5_000) as f64 / 1_000.0);
        let mut tx = Vec::new();
        for i in 0..n {
            if !sim.net.is_crashed(i) {
                for &(_, bout) in &sim.traffic(i).per_second {
                    tx.push(bout as f64 / 1024.0);
                }
            }
        }
        eprintln!(
            "ablation_k: K={k} H={h} L={l}: λ/d={ratio:.3} bound β<{bound:.3} \
             detect={detect:?}s mean_tx={:.2} KB/s",
            mean(&tx)
        );
        rows.push(format!(
            "{k},{h},{l},{ratio:.4},{bound:.4},{},{:.3}",
            detect.map(|v| format!("{v:.1}")).unwrap_or_else(|| "timeout".into()),
            mean(&tx)
        ));
    }
    print_csv(
        "K,H,L,lambda_over_d,detection_bound,crash_detect_s,mean_tx_kbs",
        rows,
    );
}
