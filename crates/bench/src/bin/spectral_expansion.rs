//! **§8 expansion claim** — the monitoring overlay's normalised second
//! eigenvalue and the resulting detection bound.
//!
//! Paper claim: "In our experiments, with K = 10 (and d = 20), we have
//! observed consistently that λ/d < 0.45. This means that Equation (2) is
//! satisfied with L = 3 and β = 0.25" — i.e. the overlay guarantees
//! detection of any faulty set of up to a quarter of the cluster.

use bench::{print_csv, Args};
use rapid_core::config::{Configuration, Member};
use rapid_core::id::{Endpoint, NodeId};
use spectral::{detection_bound, MonitoringGraph};

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = if args.full {
        vec![100, 500, 1000, 2000]
    } else {
        vec![100, 250, 500]
    };
    let mut rows = Vec::new();
    for k in [6usize, 8, 10, 12] {
        for &n in &sizes {
            let cfg = Configuration::bootstrap(
                (0..n)
                    .map(|i| {
                        Member::new(
                            NodeId::from_u128(i as u128 + args.seed as u128 * 1_000_000 + 1),
                            Endpoint::new(format!("node-{i}"), 4000),
                        )
                    })
                    .collect(),
            );
            let g = MonitoringGraph::build(&cfg, k);
            let ratio = g.lambda_over_d(600, args.seed).unwrap_or(f64::NAN);
            let bound = detection_bound(3, k, ratio);
            eprintln!("spectral: K={k} n={n}: λ/d={ratio:.4}, detection bound β<{bound:.3}");
            rows.push(format!("{k},{n},{ratio:.5},{bound:.5}"));
        }
    }
    print_csv("K,n,lambda_over_d,detection_bound_beta", rows);
}
