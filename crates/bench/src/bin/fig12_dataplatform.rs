//! **Figure 12** — End-to-end transactional data platform: transaction
//! latency with the in-house all-to-all failure detector vs Rapid, under
//! a packet blackhole between the serialization server and one data
//! server.
//!
//! Paper result: the baseline repeatedly fails the serializer over,
//! degrading latency and dropping throughput by 32%; with Rapid the fault
//! never exceeds L alert reports, so the workload runs uninterrupted.

use bench::{print_csv, Args};
use dataplatform::world::{all_latencies, build_world, total_failovers};
use rapid_sim::series::{mean, percentile};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n_servers = 16;
    let n_clients = if args.full { 8 } else { 4 };
    let fault_at = 10_000u64;
    let end = if args.full { 120_000 } else { 60_000 };

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for rapid in [false, true] {
        let label = if rapid { "rapid" } else { "baseline-fd" };
        let mut sim = build_world(n_servers, n_clients, rapid, 1_000, args.seed);
        sim.run_until(fault_at);
        // The serialization server is dp-00 (actor 0); blackhole it against
        // one data server (actor 5), as in the paper.
        sim.schedule_fault(fault_at, Fault::BlackholePair(0, 5));
        sim.run_until(end);

        let lats = all_latencies(&sim, n_servers);
        let in_window: Vec<f64> = lats
            .iter()
            .filter(|(t, _)| *t >= fault_at)
            .map(|(_, l)| *l as f64)
            .collect();
        let committed = in_window.len();
        let throughput = committed as f64 / ((end - fault_at) as f64 / 1_000.0);
        let failovers = total_failovers(&sim, n_servers);
        eprintln!(
            "fig12: {label}: committed={committed} throughput={throughput:.0}/s \
             mean={:.1}ms p99={:.1}ms max={:.0}ms failovers={failovers}",
            mean(&in_window),
            percentile(&in_window, 99.0),
            percentile(&in_window, 100.0),
        );
        rows.push(format!(
            "{label},{committed},{throughput:.1},{:.2},{:.2},{:.0},{failovers}",
            mean(&in_window),
            percentile(&in_window, 99.0),
            percentile(&in_window, 100.0),
        ));
        // Per-second latency series (the paper's timeseries plot).
        let mut by_sec: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for (t, l) in &lats {
            by_sec.entry(t / 1_000).or_default().push(*l as f64);
        }
        for (t, vs) in by_sec {
            series.push(format!(
                "{label},{t},{:.2},{:.0}",
                mean(&vs),
                percentile(&vs, 100.0)
            ));
        }
    }
    println!("# summary");
    print_csv(
        "system,committed_txns,throughput_per_s,mean_ms,p99_ms,max_ms,failovers",
        rows,
    );
    println!("# latency timeseries");
    print_csv("system,t_s,mean_ms,max_ms", series);
}
