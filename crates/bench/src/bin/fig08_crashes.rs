//! **Figure 8** — Ten concurrent crash failures at N=1000.
//!
//! Paper result: Memberlist and ZooKeeper report many intermediate sizes
//! while transitioning N → N−10; Rapid detects all ten failures as one
//! multi-process cut and removes them in a single 1-step consensus
//! decision (its line drops vertically). Rapid's stable edge detector
//! reacts ~10 s later than Memberlist's.
//!
//! The experiment itself is data: `scenarios/fig08_crashes.toml`. This
//! binary replays it per system and renders the figure's CSV.

use bench::{aggregate_timeseries, load_scenario, print_csv, Args, SystemKind};
use rapid_scenario::{runner, SimDriver};

fn main() {
    let args = Args::parse();
    let scenario = load_scenario("fig08_crashes", &args);
    let n = scenario.n;
    let crashes = scenario
        .resolve_group_name("victims")
        .expect("shipped scenario has a victims group")
        .len();
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut driver = SimDriver::new(kind, &scenario).expect("sim driver");
        let report = runner::run(&scenario, &mut driver).expect("scenario run");
        assert!(
            report.phases[0].converged_at_ms.is_some(),
            "bootstrap must converge"
        );
        let crash_phase = &report.phases[1];
        let crash_at = crash_phase.start_ms + 10_000;
        let detect_s = crash_phase
            .converged_at_ms
            .map(|t| (t - crash_at) as f64 / 1_000.0);
        let world = driver.world();
        // Count distinct intermediate sizes during the transition.
        let transition: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms > crash_at && s.value < n as f64 && s.value > (n - crashes) as f64)
            .copied()
            .collect();
        let intermediate = rapid_sim::series::unique_values(&transition);
        eprintln!(
            "fig08: {}: detection={:?}s intermediate_sizes={}",
            kind.label(),
            detect_s,
            intermediate
        );
        summary.push(format!(
            "{},{},{},{}",
            kind.label(),
            n,
            detect_s.map(|v| format!("{v:.1}")).unwrap_or_else(|| "timeout".into()),
            intermediate
        ));
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms + 30_000 > crash_at)
            .copied()
            .collect();
        for (t, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), t, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,detection_latency_s,intermediate_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
