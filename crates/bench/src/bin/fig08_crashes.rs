//! **Figure 8** — Ten concurrent crash failures at N=1000.
//!
//! Paper result: Memberlist and ZooKeeper report many intermediate sizes
//! while transitioning N → N−10; Rapid detects all ten failures as one
//! multi-process cut and removes them in a single 1-step consensus
//! decision (its line drops vertically). Rapid's stable edge detector
//! reacts ~10 s later than Memberlist's.

use bench::{aggregate_timeseries, print_csv, Args, SystemKind, World};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let crashes = 10;
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut world = World::bootstrap(kind, n, args.seed);
        let max = if args.full { 1_200_000 } else { 600_000 };
        let start = world.converge(n, max).expect("bootstrap must converge");
        let crash_at = start + 10_000;
        for i in 0..crashes {
            // Spread victims across the id space.
            world.schedule_cluster_fault(crash_at, Fault::Crash(1 + i * (n / crashes - 1)));
        }
        let detected = world.converge(n - crashes, 300_000);
        let detect_s = detected.map(|t| (t - crash_at) as f64 / 1_000.0);
        // Count distinct intermediate sizes during the transition.
        let transition: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms > crash_at && s.value < n as f64 && s.value > (n - crashes) as f64)
            .copied()
            .collect();
        let intermediate = rapid_sim::series::unique_values(&transition);
        eprintln!(
            "fig08: {}: detection={:?}s intermediate_sizes={}",
            kind.label(),
            detect_s,
            intermediate
        );
        summary.push(format!(
            "{},{},{},{}",
            kind.label(),
            n,
            detect_s.map(|v| format!("{v:.1}")).unwrap_or_else(|| "timeout".into()),
            intermediate
        ));
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms + 30_000 > crash_at)
            .copied()
            .collect();
        for (t, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), t, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,detection_latency_s,intermediate_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
