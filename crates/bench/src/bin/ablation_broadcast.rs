//! **Ablation** — dissemination strategy: epidemic gossip vs unicast-to-all
//! (§4.3/§6 leave the broadcaster pluggable; the paper's implementation
//! unicasts alerts and gossips votes).
//!
//! Measures, for a 10-node crash in an N-node cluster: time from crash to
//! cluster-wide convergence, and per-process bandwidth.

use bench::{print_csv, Args};
use rapid_core::settings::Settings;
use rapid_sim::cluster::{all_report, RapidClusterBuilder};
use rapid_sim::series::{mean, percentile};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let mut rows = Vec::new();
    for gossip in [true, false] {
        let label = if gossip { "gossip" } else { "unicast-all" };
        let settings = Settings {
            use_gossip_broadcast: gossip,
            ..Settings::default()
        };
        let mut sim = RapidClusterBuilder::new(n)
            .settings(settings)
            .seed(args.seed)
            .build_static();
        sim.run_until(5_000);
        let crash_at = 5_000;
        for i in 0..10 {
            sim.schedule_fault(crash_at, Fault::Crash(2 + i * (n / 10 - 1)));
        }
        let done = sim
            .run_until_pred(300_000, |s| all_report(s, n - 10))
            .expect("must converge");
        sim.run_until(done + 5_000);
        let mut rx = Vec::new();
        let mut tx = Vec::new();
        for i in 0..n {
            if sim.net.is_crashed(i) {
                continue;
            }
            for &(bin, bout) in &sim.traffic(i).per_second {
                rx.push(bin as f64 / 1024.0);
                tx.push(bout as f64 / 1024.0);
            }
        }
        let detect_s = (done - crash_at) as f64 / 1_000.0;
        eprintln!(
            "ablation_broadcast: {label}: convergence {detect_s:.1}s, \
             mean rx/tx {:.2}/{:.2} KB/s, p99 {:.2}/{:.2}, max {:.1}/{:.1}",
            mean(&rx),
            mean(&tx),
            percentile(&rx, 99.0),
            percentile(&tx, 99.0),
            percentile(&rx, 100.0),
            percentile(&tx, 100.0),
        );
        rows.push(format!(
            "{label},{n},{detect_s:.1},{:.3},{:.3},{:.3},{:.3},{:.1},{:.1}",
            mean(&rx),
            mean(&tx),
            percentile(&rx, 99.0),
            percentile(&tx, 99.0),
            percentile(&rx, 100.0),
            percentile(&tx, 100.0),
        ));
    }
    print_csv(
        "mode,n,convergence_s,mean_rx_kbs,mean_tx_kbs,p99_rx_kbs,p99_tx_kbs,max_rx_kbs,max_tx_kbs",
        rows,
    );
}
