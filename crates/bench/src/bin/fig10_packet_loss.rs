//! **Figure 10** — Sustained heavy packet loss: 80% of packets *sent by*
//! 1% of processes are dropped from t=90 s.
//!
//! Paper result: ZooKeeper reacts late (sessions eventually expire) and
//! never removes all faulty processes (occasional heartbeats renew some
//! sessions); Memberlist's conservative suspicion keeps oscillating
//! without conclusively removing the set; Rapid identifies and removes
//! exactly the faulty processes.
//!
//! The experiment itself is data: `scenarios/fig10_packet_loss.toml`.
//! This binary replays it per system and renders the figure's CSV.

use bench::{aggregate_timeseries, load_scenario, print_csv, Args, SystemKind};
use rapid_scenario::{runner, SimDriver};

fn main() {
    let args = Args::parse();
    let scenario = load_scenario("fig10_packet_loss", &args);
    let n = scenario.n;
    let faulty = scenario
        .resolve_group_name("faulty")
        .expect("shipped scenario has a faulty group")
        .len();
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut driver = SimDriver::new(kind, &scenario).expect("sim driver");
        let report = runner::run(&scenario, &mut driver).expect("scenario run");
        assert!(
            report.phases[0].converged_at_ms.is_some(),
            "bootstrap must converge"
        );
        let fault_at = report.phases[1].start_ms + 10_000;
        let world = driver.world();
        let removed_at = {
            // First time every healthy process stopped counting all faulty.
            let healthy_target = (n - faulty) as f64;
            let offset = world.cluster_offset();
            let mut by_t: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
            for s in world.samples().iter().filter(|s| {
                s.t_ms >= fault_at && s.actor >= offset + faulty
            }) {
                let e = by_t.entry(s.t_ms / 1_000).or_insert((0, 0));
                e.1 += 1;
                if (s.value - healthy_target).abs() < 0.5 {
                    e.0 += 1;
                }
            }
            by_t.into_iter()
                .find(|(_, (ok, total))| ok == total && *total > 0)
                .map(|(t, _)| t as f64 - fault_at as f64 / 1_000.0)
        };
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms >= fault_at.saturating_sub(10_000))
            .copied()
            .collect();
        let distinct = rapid_sim::series::unique_values(&window);
        eprintln!(
            "fig10: {}: clean_removal_at={:?}s distinct_sizes={}",
            kind.label(),
            removed_at,
            distinct
        );
        summary.push(format!(
            "{},{},{},{},{}",
            kind.label(),
            n,
            faulty,
            removed_at.map(|v| format!("{v:.0}")).unwrap_or_else(|| "never".into()),
            distinct
        ));
        for (ts, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), ts, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,faulty,clean_removal_s,distinct_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
