//! **Figure 10** — Sustained heavy packet loss: 80% of packets *sent by*
//! 1% of processes are dropped from t=90 s.
//!
//! Paper result: ZooKeeper reacts late (sessions eventually expire) and
//! never removes all faulty processes (occasional heartbeats renew some
//! sessions); Memberlist's conservative suspicion keeps oscillating
//! without conclusively removing the set; Rapid identifies and removes
//! exactly the faulty processes.

use bench::{aggregate_timeseries, print_csv, Args, SystemKind, World};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let faulty = (n / 100).max(2);
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut world = World::bootstrap(kind, n, args.seed);
        let max = if args.full { 1_200_000 } else { 600_000 };
        let start = world.converge(n, max).expect("bootstrap must converge");
        let fault_at = start + 10_000;
        for i in 0..faulty {
            world.schedule_cluster_fault(fault_at, Fault::EgressDrop(i, 0.8));
        }
        world.run_until(fault_at + 300_000);
        let removed_at = {
            // First time every healthy process stopped counting all faulty.
            let healthy_target = (n - faulty) as f64;
            let offset = world.cluster_offset();
            let mut by_t: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
            for s in world.samples().iter().filter(|s| {
                s.t_ms >= fault_at && s.actor >= offset + faulty
            }) {
                let e = by_t.entry(s.t_ms / 1_000).or_insert((0, 0));
                e.1 += 1;
                if (s.value - healthy_target).abs() < 0.5 {
                    e.0 += 1;
                }
            }
            by_t.into_iter()
                .find(|(_, (ok, total))| ok == total && *total > 0)
                .map(|(t, _)| t as f64 - fault_at as f64 / 1_000.0)
        };
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms >= fault_at.saturating_sub(10_000))
            .copied()
            .collect();
        let distinct = rapid_sim::series::unique_values(&window);
        eprintln!(
            "fig10: {}: clean_removal_at={:?}s distinct_sizes={}",
            kind.label(),
            removed_at,
            distinct
        );
        summary.push(format!(
            "{},{},{},{},{}",
            kind.label(),
            n,
            faulty,
            removed_at.map(|v| format!("{v:.0}")).unwrap_or_else(|| "never".into()),
            distinct
        ));
        for (ts, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), ts, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,faulty,clean_removal_s,distinct_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
