//! **Figure 11** — Sensitivity of almost-everywhere agreement to the
//! `K, H, L` watermarks.
//!
//! Methodology (paper §7): initialise N=1000 processes, fail F random
//! processes, generate the alert messages their observers would broadcast,
//! and deliver them to every process in an independent uniform-random
//! order. A *conflict* is a process whose first emitted proposal does not
//! contain all F failures.
//!
//! Paper result: the conflict rate is highest when `H − L` is small and
//! `F` is small (processes propose before gathering all alerts); for
//! `H − L = 5, F = 2` the conflict rate is ~2%, and increasing the gap to
//! 6 cuts it ~4x. All combinations of `H ∈ {6..9}, L ∈ {1..4},
//! F ∈ {2,4,8,16}` are swept with 20 repetitions (K=10).

use bench::{print_csv, Args};
use rapid_core::alert::Alert;
use rapid_core::config::{Configuration, Member};
use rapid_core::cut::CutDetector;
use rapid_core::id::{Endpoint, NodeId};
use rapid_core::ring::Topology;
use rapid_core::rng::Xoshiro256;

fn main() {
    let args = Args::parse();
    let n: usize = if args.full { 1000 } else { 250 };
    let reps: usize = if args.full { 20 } else { 10 };
    let k = 10usize;

    // Build the configuration + topology once.
    let members: Vec<Member> = (0..n)
        .map(|i| {
            Member::new(
                NodeId::from_u128(i as u128 + 1),
                Endpoint::new(format!("node-{i}"), 4000),
            )
        })
        .collect();
    let cfg = Configuration::bootstrap(members.clone());
    let topo = Topology::build(&cfg, k);

    let mut rows = Vec::new();
    for h in [6usize, 7, 8, 9] {
        for l in [1usize, 2, 3, 4] {
            for f in [2usize, 4, 8, 16] {
                let mut conflicts = 0usize;
                let mut observers_total = 0usize;
                for rep in 0..reps {
                    let mut rng =
                        Xoshiro256::seed_from_u64(args.seed ^ ((h * 64 + l * 8) as u64) ^ ((f as u64) << 32) ^ rep as u64);
                    // Fail F random processes and collect their observers'
                    // alerts.
                    let failed = rng.choose_indices(n, f);
                    let mut alerts = Vec::new();
                    for &s in &failed {
                        for e in topo.observers_of(s as u32) {
                            let obs = cfg.member_at(e.rank as usize);
                            let sub = cfg.member_at(s);
                            alerts.push(Alert::remove(
                                obs.id,
                                sub.id,
                                sub.addr,
                                cfg.id(),
                                e.ring,
                            ));
                        }
                    }
                    // Each process ingests the alerts in its own random
                    // order; its first proposal is what it would vote for.
                    for _process in 0..n {
                        let mut order = alerts.clone();
                        rng.shuffle(&mut order);
                        let mut cd = CutDetector::new(cfg.id(), k, h, l);
                        let mut first: Option<usize> = None;
                        for a in &order {
                            cd.record(a, 0);
                            if let Some(p) = cd.proposal() {
                                first = Some(p.len());
                                break;
                            }
                        }
                        observers_total += 1;
                        if first.map(|len| len != f).unwrap_or(true) {
                            conflicts += 1;
                        }
                    }
                }
                let rate = 100.0 * conflicts as f64 / observers_total as f64;
                eprintln!("fig11: H={h} L={l} F={f}: conflict rate {rate:.2}%");
                rows.push(format!("{h},{l},{f},{rate:.4}"));
            }
        }
    }
    print_csv("H,L,F,conflict_rate_pct", rows);
}
