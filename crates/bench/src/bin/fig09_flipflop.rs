//! **Figure 9** — Flip-flopping one-way connectivity loss: 1% of processes
//! drop *all ingress* packets for 20 s, recover for 20 s, repeatedly
//! (`iptables INPUT`-chain drops in the paper).
//!
//! Paper result: ZooKeeper does not react at all (the faulty clients keep
//! *sending* heartbeats); Memberlist oscillates and never removes all
//! faulty processes; Rapid detects and removes them.

use bench::{aggregate_timeseries, print_csv, Args, SystemKind, World};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let n = if args.full { 1000 } else { 200 };
    let faulty = (n / 100).max(2);
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut world = World::bootstrap(kind, n, args.seed);
        let max = if args.full { 1_200_000 } else { 600_000 };
        let start = world.converge(n, max).expect("bootstrap must converge");
        // 20 s on / 20 s off cycles for 300 s.
        let fault_start = start + 10_000;
        let mut t = fault_start;
        let end = fault_start + 300_000;
        while t < end {
            for i in 0..faulty {
                world.schedule_cluster_fault(t, Fault::IngressDrop(i, 1.0));
                world.schedule_cluster_fault(t + 20_000, Fault::IngressDrop(i, 0.0));
            }
            t += 40_000;
        }
        world.run_until(end);
        // Outcome: how many healthy processes still count the faulty ones?
        let final_sizes: Vec<f64> = world.observations().into_iter().flatten().collect();
        let removed_everywhere = final_sizes.iter().all(|&v| v <= (n - faulty) as f64 + 0.5);
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms >= fault_start)
            .copied()
            .collect();
        let distinct = rapid_sim::series::unique_values(&window);
        eprintln!(
            "fig09: {}: faulty_removed_everywhere={} distinct_sizes={}",
            kind.label(),
            removed_everywhere,
            distinct
        );
        summary.push(format!(
            "{},{},{},{},{}",
            kind.label(),
            n,
            faulty,
            removed_everywhere,
            distinct
        ));
        for (ts, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), ts, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,faulty,removed_everywhere,distinct_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
