//! **Figure 9** — Flip-flopping one-way connectivity loss: 1% of processes
//! drop *all ingress* packets for 20 s, recover for 20 s, repeatedly
//! (`iptables INPUT`-chain drops in the paper).
//!
//! Paper result: ZooKeeper does not react at all (the faulty clients keep
//! *sending* heartbeats); Memberlist oscillates and never removes all
//! faulty processes; Rapid detects and removes them.
//!
//! The experiment itself is data: `scenarios/fig09_flipflop.toml`. This
//! binary replays it per system and renders the figure's CSV.

use bench::{aggregate_timeseries, load_scenario, print_csv, Args, SystemKind};
use rapid_scenario::{runner, SimDriver};

fn main() {
    let args = Args::parse();
    let scenario = load_scenario("fig09_flipflop", &args);
    let n = scenario.n;
    let faulty = scenario
        .resolve_group_name("faulty")
        .expect("shipped scenario has a faulty group")
        .len();
    let systems = [
        SystemKind::ZooKeeper,
        SystemKind::Memberlist,
        SystemKind::Rapid,
    ];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for kind in systems {
        let mut driver = SimDriver::new(kind, &scenario).expect("sim driver");
        let report = runner::run(&scenario, &mut driver).expect("scenario run");
        assert!(
            report.phases[0].converged_at_ms.is_some(),
            "bootstrap must converge"
        );
        let phase = &report.phases[1];
        let fault_start = phase.start_ms + 10_000;
        // Outcome: how many healthy processes still count the faulty ones?
        // The scenario's max_size expectation is exactly the paper's
        // "removed everywhere" criterion (looked up by kind, not
        // position, so editing the TOML's expectation list cannot
        // silently swap the headline number).
        let removed_everywhere = phase
            .expects
            .iter()
            .find(|e| e.desc.starts_with("max_size"))
            .expect("shipped fig09 scenario carries a max_size expectation")
            .passed
            == Some(true);
        let world = driver.world();
        let window: Vec<_> = world
            .samples()
            .iter()
            .filter(|s| s.t_ms >= fault_start)
            .copied()
            .collect();
        let distinct = rapid_sim::series::unique_values(&window);
        eprintln!(
            "fig09: {}: faulty_removed_everywhere={} distinct_sizes={}",
            kind.label(),
            removed_everywhere,
            distinct
        );
        summary.push(format!(
            "{},{},{},{},{}",
            kind.label(),
            n,
            faulty,
            removed_everywhere,
            distinct
        ));
        for (ts, min, median, max, d) in aggregate_timeseries(&window, world.cluster_offset()) {
            rows.push(format!("{},{},{},{},{},{}", kind.label(), ts, min, median, max, d));
        }
    }
    println!("# summary");
    print_csv("system,n,faulty,removed_everywhere,distinct_sizes", summary);
    println!("# timeseries");
    print_csv("system,t_s,min_size,median_size,max_size,distinct_sizes", rows);
}
