//! **Figure 6** — ECDF of per-process bootstrap convergence latency: the
//! first instant each process reports the full cluster size.
//!
//! Paper result: Rapid's distribution is tight (almost every process
//! converges at the same moment — one view change installs everyone);
//! Memberlist has a long tail (push-pull every 30 s); ZooKeeper sits far
//! to the right.

use bench::{print_csv, Args, SystemKind, World};
use rapid_sim::series::ecdf;

fn main() {
    let args = Args::parse();
    let n = if args.full { 2000 } else { 500 };
    let mut rows = Vec::new();
    for kind in SystemKind::bootstrap_set() {
        let mut world = World::bootstrap(kind, n, args.seed);
        let max = if args.full { 1_200_000 } else { 600_000 };
        let converged = world.converge(n, max);
        eprintln!("fig06: {} n={} converged={:?}", kind.label(), n, converged);
        let times = world.per_process_convergence(n);
        for (latency_s, frac) in ecdf(&times) {
            rows.push(format!("{},{:.3},{:.5}", kind.label(), latency_s, frac));
        }
    }
    print_csv("system,latency_s,cdf", rows);
}
