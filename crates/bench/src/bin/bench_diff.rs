//! CI regression gate: compares a current benchmark JSON document
//! against a committed baseline and exits non-zero when any tracked
//! leaf regressed beyond tolerance.
//!
//! ```text
//! cargo run --release -p bench --bin bench_diff -- \
//!     BENCH_route.json /tmp/route_now.json [--tol 0.5] [--skip wall]...
//! ```
//!
//! Leaves are matched by dotted path (see [`bench::diff`]): `_ms`/`_bytes`
//! suffixes are lower-is-better, `per_s` leaves are higher-is-better,
//! everything else is informational. `--skip SUBSTR` (repeatable)
//! excludes paths containing the substring — wall-clock leaves are the
//! usual candidates on shared CI hardware. `--tol F` widens the default
//! 25% slack. Exit status: 0 clean, 1 regression(s), 2 usage/IO error.

use bench::diff::{regressions, DiffOpts};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut opts = DiffOpts::default();
    let mut files = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tol" => {
                i += 1;
                opts.tol = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| die("--tol needs a non-negative number"));
            }
            "--skip" => {
                i += 1;
                opts.skip.push(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--skip needs a substring")),
                );
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag:?}")),
            path => files.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = files.as_slice() else {
        die("usage: bench_diff <baseline.json> <current.json> [--tol F] [--skip SUBSTR]...");
    };
    let baseline = read(baseline_path);
    let current = read(current_path);
    match regressions(&baseline, &current, &opts) {
        Ok(regs) if regs.is_empty() => {
            eprintln!(
                "bench_diff: {current_path} within {:.0}% of {baseline_path}",
                opts.tol * 100.0
            );
        }
        Ok(regs) => {
            eprintln!(
                "bench_diff: {} regression(s) beyond {:.0}% vs {baseline_path}:",
                regs.len(),
                opts.tol * 100.0
            );
            for r in &regs {
                eprintln!("  {}: {} -> {}", r.path, r.baseline, r.current);
            }
            std::process::exit(1);
        }
        Err(e) => die(&e),
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    std::process::exit(2);
}
