//! **Table 1** — Number of unique cluster sizes reported by processes
//! during bootstrap.
//!
//! Paper result:
//!
//! | System     | N=1000 | N=1500 | N=2000 |
//! |------------|--------|--------|--------|
//! | ZooKeeper  | 1000   | 1500   | 2000   |
//! | Memberlist | 901    | 1383   | 1858   |
//! | Rapid-C    | 9      | 10     | 7      |
//! | Rapid      | 4      | 8      | 4      |
//!
//! Rapid installs the membership in a handful of multi-node view changes;
//! the others report nearly every intermediate size.

use bench::{print_csv, Args, SystemKind, World};

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = if args.full {
        vec![1000, 1500, 2000]
    } else {
        vec![200, 350, 500]
    };
    let mut rows = Vec::new();
    for kind in SystemKind::bootstrap_set() {
        for &n in &sizes {
            let mut world = World::bootstrap(kind, n, args.seed);
            let max = if args.full { 1_200_000 } else { 600_000 };
            world.converge(n, max);
            let uniques = world.unique_sizes();
            eprintln!("table1: {} n={} unique_sizes={}", kind.label(), n, uniques);
            rows.push(format!("{},{},{}", kind.label(), n, uniques));
        }
    }
    print_csv("system,n,unique_cluster_sizes", rows);
}
