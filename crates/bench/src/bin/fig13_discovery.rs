//! **Figure 13** — Service discovery: end-to-end request latency through a
//! load balancer whose backend list is maintained by Serf (Memberlist) vs
//! Rapid, while 10 of 50 backends fail.
//!
//! Paper result: Rapid detects all failures concurrently and triggers a
//! *single* configuration reload; Serf detects them one by one, causing
//! several reloads and repeated tail-latency spikes. In steady state the
//! two are indistinguishable.

use bench::{print_csv, Args};
use discovery::{build_world, DiscoveryProc};
use rapid_sim::series::{mean, percentile};
use rapid_sim::Fault;

fn main() {
    let args = Args::parse();
    let backends = if args.full { 50 } else { 30 };
    let kill = 10;
    let req_per_tick = if args.full { 100 } else { 20 }; // per 100 ms

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for use_rapid in [false, true] {
        let label = if use_rapid { "rapid" } else { "serf" };
        let mut sim = build_world(backends, use_rapid, req_per_tick, args.seed);
        // Wait for the LB to discover the whole fleet.
        let discovered = sim.run_until_pred(600_000, |s| match s.actor(0) {
            DiscoveryProc::Lb(lb) => lb.backend_count() == backends,
            _ => false,
        });
        assert!(discovered.is_some(), "LB must discover all backends");
        sim.run_until(sim.now() + 10_000);
        let reloads_before = match sim.actor(0) {
            DiscoveryProc::Lb(lb) => lb.reloads,
            _ => 0,
        };
        let fail_at = sim.now() + 1_000;
        for i in 1..=kill {
            sim.schedule_fault(fail_at, Fault::Crash(i));
        }
        sim.run_until(fail_at + 60_000);
        let (reloads, remaining) = match sim.actor(0) {
            DiscoveryProc::Lb(lb) => (lb.reloads - reloads_before, lb.backend_count()),
            _ => (0, 0),
        };
        let lats: Vec<(u64, u64)> = match sim.actor(backends + 1) {
            DiscoveryProc::Gen(g) => g.latencies.clone(),
            _ => Vec::new(),
        };
        let window: Vec<f64> = lats
            .iter()
            .filter(|(t, _)| *t + 5_000 >= fail_at)
            .map(|(_, l)| *l as f64)
            .collect();
        eprintln!(
            "fig13: {label}: reloads={reloads} remaining_backends={remaining} \
             p50={:.1}ms p99={:.1}ms max={:.0}ms over fault window",
            percentile(&window, 50.0),
            percentile(&window, 99.0),
            percentile(&window, 100.0),
        );
        rows.push(format!(
            "{label},{reloads},{remaining},{:.2},{:.2},{:.0}",
            percentile(&window, 50.0),
            percentile(&window, 99.0),
            percentile(&window, 100.0),
        ));
        let mut by_sec: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for (t, l) in &lats {
            by_sec.entry(t / 1_000).or_default().push(*l as f64);
        }
        for (t, vs) in by_sec {
            series.push(format!(
                "{label},{t},{:.2},{:.2},{:.0}",
                mean(&vs),
                percentile(&vs, 99.0),
                percentile(&vs, 100.0)
            ));
        }
    }
    println!("# summary");
    print_csv(
        "system,reloads_after_failure,remaining_backends,p50_ms,p99_ms,max_ms",
        rows,
    );
    println!("# latency timeseries");
    print_csv("system,t_s,mean_ms,p99_ms,max_ms", series);
}
