//! Criterion micro-benchmarks for the protocol's hot paths.
//!
//! These complement the figure/table binaries: the paper's Table 2
//! (bandwidth) depends on message sizes and batching, and the CD fast path
//! depends on alert ingestion and bitmap merging being cheap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapid_core::alert::Alert;
use rapid_core::config::{ConfigId, Configuration, Member};
use rapid_core::cut::CutDetector;
use rapid_core::id::{Endpoint, NodeId};
use rapid_core::membership::{Proposal, ProposalItem};
use rapid_core::metadata::Metadata;
use rapid_core::paxos::FastRound;
use rapid_core::ring::Topology;
use rapid_core::util::BitVec;
use rapid_core::wire::{self, Message};
use spectral::MonitoringGraph;

/// Counting allocator wrapping the system one, for the zero-allocation
/// steady-state verification below.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations per simulator event over a steady-state window
/// (64 members, converged, no churn): the delivery path is required to be
/// allocation-free, so the per-event rate must stay ~0 (only amortised
/// growth of sample/traffic vectors remains).
fn bench_steady_state_allocations(_c: &mut Criterion) {
    use rapid_sim::cluster::RapidClusterBuilder;
    let mut sim = RapidClusterBuilder::new(64).seed(5).build_static();
    sim.run_until(30_000); // Bootstrap + warm-up: buffers reach capacity.
    let events_before = sim.events_processed();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(90_000); // Steady state: probes/acks/ticks only.
    let events = sim.events_processed() - events_before;
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let per_event = allocs as f64 / events as f64;
    println!(
        "bench steady_state_allocs                         {allocs} allocs / {events} events = {per_event:.4}/event"
    );
    assert!(
        per_event < 0.05,
        "steady-state delivery path must be allocation-free, got {per_event:.4} allocs/event"
    );
}

/// Same guard with the flight recorder enabled: trace rings preallocate
/// at construction and events are fixed-size `Copy` slots, so recording
/// must not put allocations back on the hot loop. (Tracing *off* is the
/// default `build_static`, covered by the guard above.)
fn bench_steady_state_allocations_traced(_c: &mut Criterion) {
    use rapid_core::settings::Settings;
    use rapid_sim::cluster::RapidClusterBuilder;
    let settings = Settings {
        obs_ring: 256,
        ..Settings::default()
    };
    let mut sim = RapidClusterBuilder::new(64).seed(5).settings(settings).build_static();
    sim.run_until(30_000);
    let events_before = sim.events_processed();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(90_000);
    let events = sim.events_processed() - events_before;
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let per_event = allocs as f64 / events as f64;
    println!(
        "bench steady_state_allocs_traced                  {allocs} allocs / {events} events = {per_event:.4}/event"
    );
    assert!(
        per_event < 0.05,
        "tracing must stay allocation-free on the hot loop, got {per_event:.4} allocs/event"
    );
}

/// Same guard with the metrics plane sampling at the default cadence:
/// timeline rings preallocate on the first sweep (inside warm-up) and
/// points are fixed-size `Copy` slots, so per-sweep sampling must not
/// put allocations back on the steady-state loop either.
fn bench_steady_state_allocations_sampled(_c: &mut Criterion) {
    use rapid_core::settings::Settings;
    use rapid_sim::cluster::RapidClusterBuilder;
    let settings = Settings {
        obs_ring: 256,
        obs_sample_ms: 1_000,
        ..Settings::default()
    };
    let mut sim = RapidClusterBuilder::new(64).seed(5).settings(settings).build_static();
    sim.run_until(30_000);
    let events_before = sim.events_processed();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_until(90_000);
    let events = sim.events_processed() - events_before;
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let per_event = allocs as f64 / events as f64;
    println!(
        "bench steady_state_allocs_sampled                 {allocs} allocs / {events} events = {per_event:.4}/event"
    );
    assert!(
        per_event < 0.05,
        "metrics sampling must stay allocation-free on the hot loop, got {per_event:.4} allocs/event"
    );
}

fn config(n: u128) -> Arc<Configuration> {
    Configuration::bootstrap(
        (1..=n)
            .map(|i| Member::new(NodeId::from_u128(i), Endpoint::new(format!("node-{i}"), 4000)))
            .collect(),
    )
}

fn bench_ring_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_topology_build");
    for n in [100u128, 1000, 2000] {
        let cfg = config(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| Topology::build(cfg, 10));
        });
    }
    g.finish();
}

fn bench_cut_detector_ingest(c: &mut Criterion) {
    // Ingest K alerts each for F failing subjects (the Figure 8 path).
    let mut g = c.benchmark_group("cut_detector_ingest");
    for f in [1usize, 10, 100] {
        let alerts: Vec<Alert> = (0..f)
            .flat_map(|s| {
                (0..10u8).map(move |ring| {
                    Alert::remove(
                        NodeId::from_u128(10_000 + ring as u128),
                        NodeId::from_u128(s as u128 + 1),
                        Endpoint::new(format!("node-{s}"), 4000),
                        ConfigId(7),
                        ring,
                    )
                })
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(f), &alerts, |b, alerts| {
            b.iter(|| {
                let mut cd = CutDetector::new(ConfigId(7), 10, 9, 3);
                for a in alerts {
                    cd.record(a, 0);
                }
                cd.proposal()
            });
        });
    }
    g.finish();
}

fn bench_vote_merge(c: &mut Criterion) {
    // Merging gossiped vote bitmaps at N=2000 (the fast-path hot loop).
    let n = 2000;
    let proposal = Proposal::from_items(
        ConfigId(1),
        vec![ProposalItem::remove(
            NodeId::from_u128(1),
            Endpoint::new("node-1", 4000),
        )],
    );
    let hash = proposal.hash();
    let mut donor = BitVec::new(n);
    for i in (0..n).step_by(3) {
        donor.set(i);
    }
    c.bench_function("fast_round_merge_2000", |b| {
        b.iter(|| {
            let mut fr = FastRound::new(n, 0);
            fr.merge(hash, &donor, Some(&proposal));
            fr.votes_for(hash)
        });
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let alerts: Arc<[Alert]> = (0..64u8)
        .map(|i| {
            Alert::join(
                NodeId::from_u128(i as u128),
                NodeId::from_u128(1000 + i as u128),
                Endpoint::new(format!("node-{i}"), 4000),
                ConfigId(3),
                i % 10,
                Metadata::with_entry("role", "backend"),
            )
        })
        .collect::<Vec<_>>()
        .into();
    let msg = Message::AlertBatch {
        config_id: ConfigId(3),
        alerts,
    };
    let bytes = wire::encode_to_vec(&msg);
    c.bench_function("wire_encode_alert_batch_64", |b| {
        b.iter(|| wire::encode_to_vec(&msg));
    });
    c.bench_function("wire_decode_alert_batch_64", |b| {
        b.iter(|| wire::decode(&bytes).unwrap());
    });
}

fn bench_config_apply(c: &mut Criterion) {
    // Applying a 100-join cut to a 1000-member configuration.
    let cfg = config(1000);
    let items: Vec<ProposalItem> = (0..100)
        .map(|i| {
            ProposalItem::join(
                NodeId::from_u128(5_000 + i),
                Endpoint::new(format!("joiner-{i}"), 4000),
                Metadata::new(),
            )
        })
        .collect();
    let proposal = Proposal::from_items(cfg.id(), items);
    c.bench_function("config_apply_100_joins_to_1000", |b| {
        b.iter(|| cfg.apply(&proposal));
    });
}

fn bench_spectral(c: &mut Criterion) {
    let cfg = config(500);
    let g = MonitoringGraph::build(&cfg, 10);
    c.bench_function("second_eigenvalue_n500_k10", |b| {
        b.iter(|| g.second_eigenvalue(100, 7));
    });
}

criterion_group!(
    benches,
    bench_steady_state_allocations,
    bench_steady_state_allocations_traced,
    bench_steady_state_allocations_sampled,
    bench_ring_build,
    bench_cut_detector_ingest,
    bench_vote_merge,
    bench_wire_codec,
    bench_config_apply,
    bench_spectral
);
criterion_main!(benches);
