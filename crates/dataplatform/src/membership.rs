//! Pluggable membership for the platform servers.
//!
//! The baseline reproduces the "in-house gossip-style failure detector
//! that uses all-to-all monitoring" the paper replaced (§7): every server
//! heartbeats every other server; a server that misses heartbeats from a
//! peer broadcasts an accusation, and *everyone* quarantines the accused
//! for a fixed period. Because a single bad link suffices to accuse, a
//! packet blackhole between two live servers keeps the accused flapping
//! in and out of the membership.
//!
//! The Rapid integration embeds a `rapid_core` node; the paper reports the
//! swap took ~60 lines in the real system, and the adapter below is about
//! that size.

use std::collections::HashMap;

use rapid_core::config::{Configuration, Member};
use rapid_core::id::{Endpoint, NodeId};
use rapid_core::node::{Action, Event, Node, NodeStatus};
use rapid_core::ring::TopologyCache;
use rapid_core::settings::Settings;

use crate::msg::DpMsg;

/// Baseline all-to-all heartbeat failure detector.
pub struct BaselineFd {
    me: Endpoint,
    peers: Vec<Endpoint>,
    last_heard: HashMap<Endpoint, u64>,
    quarantined_until: HashMap<Endpoint, u64>,
    next_hb_at: u64,
    next_check_at: u64,
    hb_interval_ms: u64,
    dead_after_ms: u64,
    quarantine_ms: u64,
    /// Number of accusations this server has broadcast (telemetry).
    pub accusations: u64,
}

impl BaselineFd {
    fn new(me: Endpoint, peers: Vec<Endpoint>) -> Self {
        BaselineFd {
            me,
            peers,
            last_heard: HashMap::new(),
            quarantined_until: HashMap::new(),
            next_hb_at: 0,
            next_check_at: 0,
            hb_interval_ms: 1_000,
            dead_after_ms: 2_500,
            quarantine_ms: 3_000,
            accusations: 0,
        }
    }

    fn tick(&mut self, now: u64, out: &mut Vec<(Endpoint, DpMsg)>) {
        if now >= self.next_hb_at {
            self.next_hb_at = now + self.hb_interval_ms;
            for p in &self.peers {
                if *p != self.me {
                    out.push((*p, DpMsg::Hb));
                }
            }
        }
        if now >= self.next_check_at {
            self.next_check_at = now + self.hb_interval_ms;
            let accused: Vec<Endpoint> = self
                .peers
                .iter()
                .filter(|p| **p != self.me)
                .filter(|p| {
                    // No accusations about peers already quarantined — the
                    // whole cluster re-admits them when the quarantine
                    // lapses (they are still heartbeating), and the bad
                    // link makes us accuse again: the flapping of Fig. 12.
                    self.quarantined_until
                        .get(*p)
                        .map(|&until| now >= until)
                        .unwrap_or(true)
                })
                .filter(|p| {
                    let heard = self.last_heard.get(*p).copied().unwrap_or(0);
                    now.saturating_sub(heard) > self.dead_after_ms
                })
                .cloned()
                .collect();
            for target in accused {
                self.accusations += 1;
                // Quarantine locally and tell everyone.
                self.quarantined_until
                    .insert(target, now + self.quarantine_ms);
                for p in &self.peers {
                    if *p != self.me {
                        out.push((
                            *p,
                            DpMsg::Accuse {
                                target,
                            },
                        ));
                    }
                }
            }
        }
    }

    fn on_message(
        &mut self,
        from: Endpoint,
        msg: &DpMsg,
        now: u64,
        out: &mut Vec<(Endpoint, DpMsg)>,
    ) {
        match msg {
            DpMsg::Hb => {
                self.last_heard.insert(from, now);
                // A quarantined peer that contacts us clearly has not heard
                // of its removal (e.g. the accusation was lost on the same
                // bad link that caused it): bounce the accusation back so
                // it steps down, like a Paxos reconfiguration would tell
                // an evicted member.
                if self
                    .quarantined_until
                    .get(&from)
                    .map(|&until| now < until)
                    .unwrap_or(false)
                {
                    out.push((from, DpMsg::Accuse { target: from }));
                }
            }
            DpMsg::Accuse { target } => {
                self.quarantined_until
                    .insert(*target, now + self.quarantine_ms);
            }
            _ => {}
        }
    }

    fn alive(&self, now: u64) -> Vec<Endpoint> {
        // The quarantine applies to ourselves too: a server that learns it
        // was accused steps down from the serializer role until re-admitted
        // (it was removed from the replicated configuration).
        self.peers
            .iter()
            .filter(|p| {
                self.quarantined_until
                    .get(*p)
                    .map(|&until| now >= until)
                    .unwrap_or(true)
            })
            .cloned()
            .collect()
    }
}

/// Rapid-backed membership adapter.
pub struct RapidMembership {
    node: Node,
}

impl RapidMembership {
    fn new(me_index: usize, servers: &[Endpoint], cache: TopologyCache) -> Self {
        let members: Vec<Member> = servers
            .iter()
            .enumerate()
            .map(|(i, addr)| Member::new(NodeId::from_u128(i as u128 + 1), *addr))
            .collect();
        let cfg = Configuration::bootstrap(members.clone());
        let node = Node::with_parts(
            members[me_index].clone(),
            Settings::default(),
            NodeStatus::Active,
            cfg,
            None,
            None,
            Some(cache),
            Some(me_index as u64 ^ 0xD9),
        );
        RapidMembership { node }
    }

    fn drive(&mut self, event: Event, out: &mut Vec<(Endpoint, DpMsg)>) -> u64 {
        let mut actions = Vec::new();
        self.node.handle(event, &mut actions);
        let mut view_changes = 0;
        for a in actions {
            match a {
                Action::Send { to, msg } => out.push((to, DpMsg::Rapid(Box::new(msg)))),
                Action::View(_) => view_changes += 1,
                _ => {}
            }
        }
        view_changes
    }

    fn alive(&self) -> Vec<Endpoint> {
        self.node
            .configuration()
            .members()
            .iter()
            .map(|m| m.addr)
            .collect()
    }
}

/// The pluggable membership module of a platform server.
pub enum Membership {
    /// All-to-all heartbeat baseline.
    Baseline(BaselineFd),
    /// Embedded Rapid node.
    Rapid(Box<RapidMembership>),
}

impl Membership {
    /// Creates the baseline detector for server `me`.
    pub fn baseline(me: Endpoint, servers: Vec<Endpoint>) -> Self {
        Membership::Baseline(BaselineFd::new(me, servers))
    }

    /// Creates a Rapid-backed membership for server `me_index`.
    pub fn rapid(me_index: usize, servers: &[Endpoint], cache: TopologyCache) -> Self {
        Membership::Rapid(Box::new(RapidMembership::new(me_index, servers, cache)))
    }

    /// Advances time. Returns the number of view changes observed.
    pub fn tick(&mut self, now: u64, out: &mut Vec<(Endpoint, DpMsg)>) -> u64 {
        match self {
            Membership::Baseline(fd) => {
                fd.tick(now, out);
                0
            }
            Membership::Rapid(r) => r.drive(Event::Tick { now_ms: now }, out),
        }
    }

    /// Feeds a membership-relevant message. Returns view changes observed.
    pub fn on_message(
        &mut self,
        from: Endpoint,
        msg: &DpMsg,
        now: u64,
        out: &mut Vec<(Endpoint, DpMsg)>,
    ) -> u64 {
        match (self, msg) {
            (Membership::Baseline(fd), m) => {
                fd.on_message(from, m, now, out);
                0
            }
            (Membership::Rapid(r), DpMsg::Rapid(inner)) => r.drive(
                Event::Receive {
                    from,
                    msg: (**inner).clone(),
                },
                out,
            ),
            _ => 0,
        }
    }

    /// The servers this module currently considers members, sorted.
    pub fn alive(&self, now: u64) -> Vec<Endpoint> {
        let mut v = match self {
            Membership::Baseline(fd) => fd.alive(now),
            Membership::Rapid(r) => r.alive(),
        };
        v.sort();
        v
    }

    /// Accusation count (baseline only; telemetry).
    pub fn accusations(&self) -> u64 {
        match self {
            Membership::Baseline(fd) => fd.accusations,
            Membership::Rapid(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: usize) -> Endpoint {
        Endpoint::new(format!("dp-{i:02}"), 6000)
    }

    #[test]
    fn baseline_accuses_silent_peer_and_recovers() {
        let servers: Vec<Endpoint> = (0..4).map(ep).collect();
        let mut fd = BaselineFd::new(ep(0), servers.clone());
        // Hear from everyone at t=0 except ep(3).
        for i in 1..3 {
            fd.on_message(ep(i), &DpMsg::Hb, 0, &mut Vec::new());
        }
        let mut out = Vec::new();
        fd.tick(3_000, &mut out);
        assert!(out
            .iter()
            .any(|(_, m)| matches!(m, DpMsg::Accuse { target } if *target == ep(3))));
        assert!(!fd.alive(3_100).contains(&ep(3)), "quarantined");
        // After quarantine and a fresh heartbeat, the peer is back.
        fd.on_message(ep(3), &DpMsg::Hb, 7_500, &mut Vec::new());
        assert!(fd.alive(7_600).contains(&ep(3)));
    }

    #[test]
    fn accusations_from_others_quarantine_globally() {
        let servers: Vec<Endpoint> = (0..4).map(ep).collect();
        let mut fd = BaselineFd::new(ep(0), servers.clone());
        fd.on_message(ep(2), &DpMsg::Accuse { target: ep(1) }, 100, &mut Vec::new());
        assert!(!fd.alive(200).contains(&ep(1)));
    }

    #[test]
    fn rapid_membership_reports_static_config() {
        let servers: Vec<Endpoint> = (0..8).map(ep).collect();
        let m = Membership::rapid(0, &servers, TopologyCache::new());
        assert_eq!(m.alive(0).len(), 8);
    }
}
