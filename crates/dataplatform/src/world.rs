//! A ready-made simulated platform world for the Figure 12 experiment.

use rapid_core::id::Endpoint;
use rapid_core::ring::TopologyCache;
use rapid_sim::{Actor, Outbox, Simulation};

use crate::client::TxnClient;
use crate::membership::Membership;
use crate::msg::{msg_size, DpMsg};
use crate::server::PlatformServer;

/// One process of the platform world.
pub enum PlatformProc {
    /// A data/serialization server.
    Server(Box<PlatformServer>),
    /// A transactional client.
    Client(Box<TxnClient>),
}

impl Actor for PlatformProc {
    type Msg = DpMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
        match self {
            PlatformProc::Server(s) => s.on_tick(now, out),
            PlatformProc::Client(c) => c.on_tick(now, out),
        }
    }

    fn on_message(&mut self, from: Endpoint, msg: DpMsg, now: u64, out: &mut Outbox<DpMsg>) {
        match self {
            PlatformProc::Server(s) => s.on_message(from, msg, now, out),
            PlatformProc::Client(c) => c.on_message(from, msg, now, out),
        }
    }

    fn msg_size(msg: &DpMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        match self {
            PlatformProc::Server(s) => s.sample(),
            PlatformProc::Client(_) => None,
        }
    }
}

/// The canonical server endpoint for index `i` (index 0 sorts lowest and
/// is therefore the initial serializer).
pub fn server_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("dp-{i:02}"), 6000)
}

/// The canonical client endpoint for index `i`.
pub fn client_ep(i: usize) -> Endpoint {
    Endpoint::new(format!("dpc-{i}"), 6100)
}

/// Builds the platform: `n_servers` servers (actors `0..s`) and
/// `n_clients` closed-loop clients (actors `s..s+n`, starting at 2 s),
/// using Rapid membership when `rapid` is true and the baseline all-to-all
/// failure detector otherwise.
pub fn build_world(
    n_servers: usize,
    n_clients: usize,
    rapid: bool,
    failover_pause_ms: u64,
    seed: u64,
) -> Simulation<PlatformProc> {
    let servers: Vec<Endpoint> = (0..n_servers).map(server_ep).collect();
    let mut sim = Simulation::new(seed, 100);
    let cache = TopologyCache::new();
    for (i, addr) in servers.iter().enumerate() {
        let membership = if rapid {
            Membership::rapid(i, &servers, cache.clone())
        } else {
            Membership::baseline(*addr, servers.clone())
        };
        sim.add_actor(
            *addr,
            PlatformProc::Server(Box::new(PlatformServer::new(
                *addr,
                membership,
                failover_pause_ms,
            ))),
        );
    }
    for i in 0..n_clients {
        sim.add_actor_at(
            client_ep(i),
            PlatformProc::Client(Box::new(TxnClient::new(
                client_ep(i),
                servers.clone(),
                4,
                seed + i as u64,
            ))),
            2_000,
        );
    }
    sim
}

/// All `(start_ms, latency_ms)` transaction records across clients.
pub fn all_latencies(sim: &Simulation<PlatformProc>, n_servers: usize) -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    for i in n_servers..sim.len() {
        if let PlatformProc::Client(c) = sim.actor(i) {
            v.extend(c.latencies.iter().copied());
        }
    }
    v.sort_unstable();
    v
}

/// Total failovers performed across servers.
pub fn total_failovers(sim: &Simulation<PlatformProc>, n_servers: usize) -> u64 {
    (0..n_servers)
        .map(|i| match sim.actor(i) {
            PlatformProc::Server(s) => s.failovers,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builder_commits() {
        let mut sim = build_world(8, 2, true, 1_000, 5);
        sim.run_until(20_000);
        assert!(!all_latencies(&sim, 8).is_empty());
    }
}
