//! The closed-loop transactional client (the paper's update-heavy
//! workload: 50/50 read-write, batched transactions).

use rapid_core::id::Endpoint;
use rapid_core::rng::Xoshiro256;
use rapid_sim::{Actor, Outbox};

use crate::msg::{msg_size, DpMsg, TsKind};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    AwaitBegin,
    Ops,
    AwaitCommit,
}

/// A closed-loop client: begin → `ops_per_txn` operations spread over the
/// data servers → commit, repeating; records per-transaction latency.
pub struct TxnClient {
    servers: Vec<Endpoint>,
    serializer_guess: Endpoint,
    ops_per_txn: u32,
    txn: u64,
    phase: Phase,
    txn_started: u64,
    ops_outstanding: u32,
    request_sent_at: u64,
    retry_timeout_ms: u64,
    rng: Xoshiro256,
    /// `(start_ms, latency_ms)` per committed transaction.
    pub latencies: Vec<(u64, u64)>,
}

impl TxnClient {
    /// Creates a client driving transactions against `servers`.
    pub fn new(me: Endpoint, servers: Vec<Endpoint>, ops_per_txn: u32, seed: u64) -> Self {
        assert!(!servers.is_empty());
        let _ = me; // Identity is implicit: responses come back to us.
        let mut sorted = servers.clone();
        sorted.sort();
        let serializer_guess = sorted[0];
        TxnClient {
            servers,
            serializer_guess,
            ops_per_txn,
            txn: 0,
            phase: Phase::Idle,
            txn_started: 0,
            ops_outstanding: 0,
            request_sent_at: 0,
            retry_timeout_ms: 1_000,
            rng: Xoshiro256::seed_from_u64(seed ^ 0x7C),
            latencies: Vec::new(),
        }
    }

    /// Committed transactions per second over `[from_ms, to_ms)`.
    pub fn throughput(&self, from_ms: u64, to_ms: u64) -> f64 {
        let committed = self
            .latencies
            .iter()
            .filter(|(t, _)| *t >= from_ms && *t < to_ms)
            .count();
        committed as f64 / ((to_ms - from_ms) as f64 / 1_000.0)
    }

    fn send_ts_req(&mut self, kind: TsKind, now: u64, out: &mut Outbox<DpMsg>) {
        self.request_sent_at = now;
        out.send(
            self.serializer_guess,
            DpMsg::TsReq {
                txn: self.txn,
                kind,
            },
        );
    }

    fn start_txn(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
        self.txn += 1;
        self.txn_started = now;
        self.phase = Phase::AwaitBegin;
        self.send_ts_req(TsKind::Begin, now, out);
    }

    fn send_ops(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
        self.phase = Phase::Ops;
        self.ops_outstanding = self.ops_per_txn;
        self.request_sent_at = now;
        for op in 0..self.ops_per_txn {
            let server = self.servers[self.rng.gen_index(self.servers.len())];
            out.send(
                server,
                DpMsg::OpReq {
                    txn: self.txn,
                    op,
                    write: op % 2 == 0, // 50/50 read-write mix
                },
            );
        }
    }
}

impl Actor for TxnClient {
    type Msg = DpMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
        match self.phase {
            Phase::Idle => self.start_txn(now, out),
            Phase::AwaitBegin | Phase::AwaitCommit => {
                if now.saturating_sub(self.request_sent_at) >= self.retry_timeout_ms {
                    let kind = if self.phase == Phase::AwaitBegin {
                        TsKind::Begin
                    } else {
                        TsKind::Commit
                    };
                    self.send_ts_req(kind, now, out);
                }
            }
            Phase::Ops => {
                if now.saturating_sub(self.request_sent_at) >= self.retry_timeout_ms {
                    self.send_ops(now, out); // Retry the batch.
                }
            }
        }
    }

    fn on_message(&mut self, _from: Endpoint, msg: DpMsg, now: u64, out: &mut Outbox<DpMsg>) {
        match msg {
            DpMsg::TsResp { txn, kind, .. } if txn == self.txn => match (self.phase, kind) {
                (Phase::AwaitBegin, TsKind::Begin) => self.send_ops(now, out),
                (Phase::AwaitCommit, TsKind::Commit) => {
                    self.latencies
                        .push((self.txn_started, now - self.txn_started));
                    self.start_txn(now, out);
                }
                _ => {}
            },
            DpMsg::Redirect { txn, serializer } if txn == self.txn => {
                self.serializer_guess = serializer;
                match self.phase {
                    Phase::AwaitBegin => self.send_ts_req(TsKind::Begin, now, out),
                    Phase::AwaitCommit => self.send_ts_req(TsKind::Commit, now, out),
                    _ => {}
                }
            }
            DpMsg::OpResp { txn, .. } if txn == self.txn && self.phase == Phase::Ops => {
                self.ops_outstanding = self.ops_outstanding.saturating_sub(1);
                if self.ops_outstanding == 0 {
                    self.phase = Phase::AwaitCommit;
                    self.send_ts_req(TsKind::Commit, now, out);
                }
            }
            _ => {}
        }
    }

    fn msg_size(msg: &DpMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::Membership;
    use crate::server::PlatformServer;
    use rapid_core::ring::TopologyCache;
    use rapid_sim::{Fault, Simulation};

    fn server_ep(i: usize) -> Endpoint {
        Endpoint::new(format!("dp-{i:02}"), 6000)
    }

    fn client_ep(i: usize) -> Endpoint {
        Endpoint::new(format!("dpc-{i}"), 6100)
    }

    pub enum P {
        S(Box<PlatformServer>),
        C(Box<TxnClient>),
    }

    impl Actor for P {
        type Msg = DpMsg;
        fn on_tick(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
            match self {
                P::S(s) => s.on_tick(now, out),
                P::C(c) => c.on_tick(now, out),
            }
        }
        fn on_message(&mut self, from: Endpoint, msg: DpMsg, now: u64, out: &mut Outbox<DpMsg>) {
            match self {
                P::S(s) => s.on_message(from, msg, now, out),
                P::C(c) => c.on_message(from, msg, now, out),
            }
        }
        fn msg_size(msg: &DpMsg) -> usize {
            msg_size(msg)
        }
        fn sample(&self) -> Option<f64> {
            None
        }
    }

    /// Builds the platform: `n_servers` + `n_clients`, baseline or Rapid.
    pub fn world(n_servers: usize, n_clients: usize, rapid: bool, seed: u64) -> Simulation<P> {
        let servers: Vec<Endpoint> = (0..n_servers).map(server_ep).collect();
        let mut sim = Simulation::new(seed, 100);
        let cache = TopologyCache::new();
        for (i, addr) in servers.iter().enumerate() {
            let membership = if rapid {
                Membership::rapid(i, &servers, cache.clone())
            } else {
                Membership::baseline(*addr, servers.clone())
            };
            sim.add_actor(
                *addr,
                P::S(Box::new(PlatformServer::new(*addr, membership, 1_000))),
            );
        }
        for i in 0..n_clients {
            sim.add_actor_at(
                client_ep(i),
                P::C(Box::new(TxnClient::new(
                    client_ep(i),
                    servers.clone(),
                    4,
                    seed + i as u64,
                ))),
                2_000,
            );
        }
        sim
    }

    fn total_commits(sim: &Simulation<P>, n_servers: usize, n_clients: usize) -> usize {
        (n_servers..n_servers + n_clients)
            .map(|i| match sim.actor(i) {
                P::C(c) => c.latencies.len(),
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn healthy_platform_commits_continuously() {
        let mut sim = world(8, 4, false, 1);
        sim.run_until(30_000);
        let commits = total_commits(&sim, 8, 4);
        assert!(commits > 500, "healthy platform must commit, got {commits}");
    }

    #[test]
    fn blackhole_flaps_baseline_but_not_rapid() {
        // The paper's fault: a packet blackhole between the serializer
        // (lowest address, actor 0) and one data server (actor 5).
        let run = |rapid: bool| {
            let mut sim = world(16, 4, rapid, 2);
            sim.run_until(10_000);
            sim.schedule_fault(10_000, Fault::BlackholePair(0, 5));
            sim.run_until(60_000);
            let failovers: u64 = (0..16)
                .map(|i| match sim.actor(i) {
                    P::S(s) => s.failovers,
                    _ => 0,
                })
                .sum();
            let commits = total_commits(&sim, 16, 4);
            (failovers, commits)
        };
        let (base_failovers, base_commits) = run(false);
        let (rapid_failovers, rapid_commits) = run(true);
        // Every server fails over once at bootstrap (serializer election);
        // the baseline must keep failing over under the blackhole.
        assert!(
            base_failovers >= 3,
            "baseline must flap, failovers={base_failovers}"
        );
        assert!(
            rapid_failovers <= 1,
            "rapid must not flap, failovers={rapid_failovers}"
        );
        assert!(
            rapid_commits as f64 > base_commits as f64 * 1.15,
            "rapid must out-commit the flapping baseline: {rapid_commits} vs {base_commits}"
        );
    }
}
