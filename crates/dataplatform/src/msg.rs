//! Messages of the data platform.

use rapid_core::id::Endpoint;
use rapid_core::wire::{self, Message};

/// Timestamp request kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsKind {
    /// Transaction begin (read timestamp).
    Begin,
    /// Transaction commit (commit timestamp).
    Commit,
}

/// Platform + embedded-membership messages.
#[derive(Clone, Debug)]
pub enum DpMsg {
    /// Client requests a timestamp from the serializer.
    TsReq {
        /// Client-chosen transaction id.
        txn: u64,
        /// Begin or commit.
        kind: TsKind,
    },
    /// Serializer grants a timestamp.
    TsResp {
        /// Echoed transaction id.
        txn: u64,
        /// Begin or commit (echoed).
        kind: TsKind,
        /// The granted timestamp.
        ts: u64,
    },
    /// The receiver is not the active serializer.
    Redirect {
        /// Echoed transaction id.
        txn: u64,
        /// Who the receiver believes is the serializer.
        serializer: Endpoint,
    },
    /// A read/write operation against a data server.
    OpReq {
        /// Transaction id.
        txn: u64,
        /// Operation sequence within the transaction.
        op: u32,
        /// True for writes.
        write: bool,
    },
    /// Data-server acknowledgement of an operation.
    OpResp {
        /// Echoed transaction id.
        txn: u64,
        /// Echoed op sequence.
        op: u32,
    },
    /// Baseline failure detector: heartbeat.
    Hb,
    /// Baseline failure detector: an accusation that `target` is dead.
    Accuse {
        /// The accused server.
        target: Endpoint,
    },
    /// Embedded Rapid protocol message.
    Rapid(Box<Message>),
}

/// Approximate encoded size for bandwidth accounting.
pub fn msg_size(msg: &DpMsg) -> usize {
    match msg {
        DpMsg::TsReq { .. } => 14,
        DpMsg::TsResp { .. } => 22,
        DpMsg::Redirect { serializer, .. } => 14 + serializer.host().len() + 4,
        DpMsg::OpReq { .. } => 18,
        DpMsg::OpResp { .. } => 17,
        DpMsg::Hb => 6,
        DpMsg::Accuse { target } => 6 + target.host().len() + 4,
        DpMsg::Rapid(m) => wire::encoded_len(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive() {
        for m in [
            DpMsg::TsReq {
                txn: 1,
                kind: TsKind::Begin,
            },
            DpMsg::Hb,
            DpMsg::Accuse {
                target: Endpoint::new("x", 1),
            },
        ] {
            assert!(msg_size(&m) > 0);
        }
    }
}
