//! The platform server: data server + (when elected) the transaction
//! serialization server.

use rapid_core::id::Endpoint;
use rapid_sim::{Actor, Outbox};

use crate::membership::Membership;
use crate::msg::{msg_size, DpMsg, TsKind};

/// A data server that also serves timestamps while it is the active
/// serializer (the lowest-addressed live server).
pub struct PlatformServer {
    me: Endpoint,
    membership: Membership,
    serializer: Option<Endpoint>,
    /// While `now < warm_until`, timestamp requests are queued (failover
    /// warm-up: replaying the timestamp log, as in Megastore/Omid).
    warm_until: u64,
    failover_pause_ms: u64,
    next_ts: u64,
    queued: Vec<(Endpoint, u64, TsKind)>,
    /// Number of failovers this server performed (telemetry).
    pub failovers: u64,
    /// View changes observed by the membership module (telemetry).
    pub view_changes: u64,
    last_now: u64,
}

impl PlatformServer {
    /// Creates a server with the given membership module.
    pub fn new(me: Endpoint, membership: Membership, failover_pause_ms: u64) -> Self {
        PlatformServer {
            me,
            membership,
            serializer: None,
            warm_until: 0,
            failover_pause_ms,
            next_ts: 1,
            queued: Vec::new(),
            failovers: 0,
            view_changes: 0,
            last_now: 0,
        }
    }

    /// The server this node currently believes is the serializer.
    pub fn serializer(&self) -> Option<&Endpoint> {
        self.serializer.as_ref()
    }

    /// Accusations broadcast by the baseline membership (0 for Rapid).
    pub fn accusations(&self) -> u64 {
        self.membership.accusations()
    }

    fn refresh_serializer(&mut self, now: u64) {
        let alive = self.membership.alive(now);
        let new = alive.first().cloned();
        if new != self.serializer {
            self.serializer = new;
            if self.serializer.as_ref() == Some(&self.me) {
                // We just took over: pause timestamp service to warm up.
                self.warm_until = now + self.failover_pause_ms;
                self.failovers += 1;
            }
        }
    }

    fn grant(&mut self, client: Endpoint, txn: u64, kind: TsKind, out: &mut Outbox<DpMsg>) {
        let ts = self.next_ts;
        self.next_ts += 1;
        out.send(client, DpMsg::TsResp { txn, kind, ts });
    }
}

impl Actor for PlatformServer {
    type Msg = DpMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DpMsg>) {
        self.last_now = now;
        let mut msgs = Vec::new();
        self.view_changes += self.membership.tick(now, &mut msgs);
        for (to, m) in msgs {
            out.send(to, m);
        }
        self.refresh_serializer(now);
        // Flush queued timestamp requests once warmed up.
        if self.serializer.as_ref() == Some(&self.me) && now >= self.warm_until {
            let queued = std::mem::take(&mut self.queued);
            for (client, txn, kind) in queued {
                self.grant(client, txn, kind, out);
            }
        }
    }

    fn on_message(&mut self, from: Endpoint, msg: DpMsg, now: u64, out: &mut Outbox<DpMsg>) {
        match &msg {
            DpMsg::TsReq { txn, kind } => {
                if self.serializer.as_ref() != Some(&self.me) {
                    let serializer = self
                        .serializer
                        .unwrap_or(self.me);
                    out.send(from, DpMsg::Redirect { txn: *txn, serializer });
                } else if now < self.warm_until {
                    self.queued.push((from, *txn, *kind));
                } else {
                    self.grant(from, *txn, *kind, out);
                }
            }
            DpMsg::OpReq { txn, op, .. } => {
                // A toy storage engine: acknowledge with a small service
                // delay (100 µs round to 0 ms — the network dominates).
                out.send(from, DpMsg::OpResp { txn: *txn, op: *op });
            }
            DpMsg::Hb | DpMsg::Accuse { .. } | DpMsg::Rapid(_) => {
                let mut msgs = Vec::new();
                self.view_changes += self.membership.on_message(from, &msg, now, &mut msgs);
                for (to, m) in msgs {
                    out.send(to, m);
                }
                self.refresh_serializer(now);
            }
            _ => {}
        }
    }

    fn msg_size(msg: &DpMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        Some(self.membership.alive(self.last_now).len() as f64)
    }
}
