//! A miniature distributed transactional data platform — the substrate of
//! the paper's first end-to-end integration (§7, Figure 12).
//!
//! Like Google Megastore and Apache Omid, the platform totally orders
//! transactions through a single active **transaction serialization
//! server**: clients fetch a begin timestamp, execute reads/writes against
//! data servers, and fetch a commit timestamp. The active serializer is
//! the lowest-addressed server the membership service considers live;
//! when membership changes, a **failover** pauses timestamp service while
//! the new serializer warms up — so spurious membership churn translates
//! directly into end-to-end latency spikes and throughput loss.
//!
//! Two membership integrations are provided, matching the paper's
//! comparison:
//!
//! * [`membership::Membership::baseline`] — the system's original
//!   all-to-all heartbeat failure detector, where *any single server's*
//!   accusation temporarily removes a peer. A packet blackhole between
//!   the serializer and one data server (the fault injected in the paper)
//!   makes that one server accuse the serializer repeatedly: failovers
//!   loop and throughput drops by roughly a third.
//! * [`membership::Membership::rapid`] — an embedded `rapid_core` node.
//!   The blackhole affects fewer than `L` observer edges, so Rapid never
//!   removes anyone and the workload runs uninterrupted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod membership;
pub mod msg;
pub mod server;
pub mod world;

pub use client::TxnClient;
pub use membership::Membership;
pub use msg::DpMsg;
pub use server::PlatformServer;
