//! Service discovery through membership — the paper's second end-to-end
//! integration (§7, Figure 13).
//!
//! An nginx-like **load balancer** discovers a fleet of backend web
//! servers through a membership service and rewrites its configuration on
//! every membership change; a **reload** pauses request dispatch briefly.
//! An open-loop generator offers 1000 requests/s. When ten backends fail
//! at once:
//!
//! * with **Serf/Memberlist**, the failures are detected one by one, each
//!   triggering its own configuration reload — repeated latency spikes;
//! * with **Rapid**, the multi-process cut removes all ten in a single
//!   view change — one reload, one spike.
//!
//! Requests dispatched to not-yet-removed dead backends time out at the
//! load balancer and are retried, adding tail latency in proportion to
//! how long the membership service keeps dead backends in the list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use rapid_core::config::Configuration;
use rapid_core::id::Endpoint;
use rapid_core::metadata::Metadata;
use rapid_core::node::{Action, Event, Node, NodeStatus};
use rapid_core::wire::{self, Message};
use rapid_sim::{Actor, Outbox};
use swim_member::{SwimConfig, SwimNode};
use swim_member::state::{msg_size as swim_size, SwimMsg};

/// Messages of the discovery world: HTTP-ish traffic + embedded
/// membership protocols.
#[derive(Clone, Debug)]
pub enum DiscMsg {
    /// Client request to the load balancer.
    Request {
        /// Request id (client-scoped).
        id: u64,
    },
    /// Load balancer response to the client.
    Response {
        /// Echoed request id.
        id: u64,
    },
    /// Load balancer → backend proxied request.
    BackendReq {
        /// Request id.
        id: u64,
    },
    /// Backend → load balancer response.
    BackendResp {
        /// Echoed request id.
        id: u64,
    },
    /// Embedded SWIM message.
    Swim(SwimMsg),
    /// Embedded Rapid message.
    Rapid(Box<Message>),
}

/// Approximate encoded size for bandwidth accounting.
pub fn msg_size(msg: &DiscMsg) -> usize {
    match msg {
        DiscMsg::Request { .. } | DiscMsg::Response { .. } => 120, // HTTP-ish
        DiscMsg::BackendReq { .. } | DiscMsg::BackendResp { .. } => 120,
        DiscMsg::Swim(m) => swim_size(m),
        DiscMsg::Rapid(m) => wire::encoded_len(m),
    }
}

/// The membership stack embedded in the LB and each backend.
pub enum MemberStack {
    /// Serf-style (SWIM).
    Swim(Box<SwimNode>),
    /// Rapid node.
    Rapid(Box<Node>),
}

impl MemberStack {
    fn tick(&mut self, now: u64, out: &mut Outbox<DiscMsg>) -> bool {
        match self {
            MemberStack::Swim(n) => {
                let mut inner = Outbox { msgs: Vec::new() };
                n.on_tick(now, &mut inner);
                for (to, m, d) in inner.msgs {
                    out.msgs.push((to, DiscMsg::Swim(m), d));
                }
                false
            }
            MemberStack::Rapid(n) => {
                let mut actions = Vec::new();
                n.handle(Event::Tick { now_ms: now }, &mut actions);
                let mut changed = false;
                for a in actions {
                    match a {
                        Action::Send { to, msg } => out.send(to, DiscMsg::Rapid(Box::new(msg))),
                        Action::View(_) | Action::Joined { .. } => changed = true,
                        _ => {}
                    }
                }
                changed
            }
        }
    }

    fn on_message(
        &mut self,
        from: Endpoint,
        msg: &DiscMsg,
        now: u64,
        out: &mut Outbox<DiscMsg>,
    ) -> bool {
        match (self, msg) {
            (MemberStack::Swim(n), DiscMsg::Swim(m)) => {
                let mut inner = Outbox { msgs: Vec::new() };
                n.on_message(from, m.clone(), now, &mut inner);
                for (to, m, d) in inner.msgs {
                    out.msgs.push((to, DiscMsg::Swim(m), d));
                }
                false
            }
            (MemberStack::Rapid(n), DiscMsg::Rapid(m)) => {
                let mut actions = Vec::new();
                n.handle(
                    Event::Receive {
                        from,
                        msg: (**m).clone(),
                    },
                    &mut actions,
                );
                let mut changed = false;
                for a in actions {
                    match a {
                        Action::Send { to, msg } => out.send(to, DiscMsg::Rapid(Box::new(msg))),
                        Action::View(_) | Action::Joined { .. } => changed = true,
                        _ => {}
                    }
                }
                changed
            }
            _ => false,
        }
    }

    /// The backend endpoints this stack currently believes are members.
    fn backends(&self) -> Vec<Endpoint> {
        match self {
            MemberStack::Swim(n) => n
                .live_members()
                .into_iter()
                .filter(|e| e.host().starts_with("backend-"))
                .collect(),
            MemberStack::Rapid(n) => {
                if n.status() != NodeStatus::Active {
                    return Vec::new();
                }
                let cfg: Arc<Configuration> = n.configuration();
                let mut v: Vec<Endpoint> = cfg
                    .members()
                    .iter()
                    .filter(|m| m.metadata.get_str("role") == Some("backend"))
                    .map(|m| m.addr)
                    .collect();
                v.sort();
                v
            }
        }
    }
}

/// Builds the role metadata tag for backend members.
pub fn backend_metadata() -> Metadata {
    Metadata::with_entry("role", "backend")
}

struct PendingReq {
    client: Endpoint,
    backend: Endpoint,
    sent_at: u64,
    attempts: u32,
}


/// The nginx-like load balancer.
pub struct LoadBalancer {
    membership: MemberStack,
    backends: Vec<Endpoint>,
    reloading_until: u64,
    reload_ms: u64,
    retry_timeout_ms: u64,
    queued: Vec<(Endpoint, u64)>,
    pending: HashMap<u64, PendingReq>,
    rr: usize,
    /// Number of configuration reloads performed (Figure 13's key count).
    pub reloads: u64,
}

impl LoadBalancer {
    /// Creates a load balancer with the given membership stack.
    pub fn new(membership: MemberStack, reload_ms: u64) -> Self {
        LoadBalancer {
            membership,
            backends: Vec::new(),
            reloading_until: 0,
            reload_ms,
            retry_timeout_ms: 1_000,
            queued: Vec::new(),
            pending: HashMap::new(),
            rr: 0,
            reloads: 0,
        }
    }

    /// The backends currently in the rotation.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    fn refresh_backends(&mut self, now: u64) {
        let list = self.membership.backends();
        if list != self.backends && !list.is_empty() {
            self.backends = list;
            self.rr = 0;
            // Rewrite the config file and reload (nginx-style pause).
            self.reloads += 1;
            self.reloading_until = now + self.reload_ms;
        }
    }

    /// Dispatches a client request to the next backend in the rotation.
    /// The client-chosen id keys the pending table (a single generator
    /// issues globally unique ids).
    fn dispatch(&mut self, client: Endpoint, id: u64, now: u64, out: &mut Outbox<DiscMsg>) {
        if self.backends.is_empty() {
            self.queued.push((client, id));
            return;
        }
        let backend = self.backends[self.rr % self.backends.len()];
        self.rr += 1;
        self.pending.insert(
            id,
            PendingReq {
                client,
                backend,
                sent_at: now,
                attempts: 1,
            },
        );
        out.send(backend, DiscMsg::BackendReq { id });
    }
}

impl Actor for LoadBalancer {
    type Msg = DiscMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DiscMsg>) {
        self.membership.tick(now, out);
        self.refresh_backends(now);
        // Flush queued requests once the reload completes.
        if now >= self.reloading_until && !self.queued.is_empty() {
            let queued = std::mem::take(&mut self.queued);
            for (client, id) in queued {
                self.dispatch(client, id, now, out);
            }
        }
        // Retry requests stuck on dead backends, on the next backend.
        let stuck: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now.saturating_sub(p.sent_at) >= self.retry_timeout_ms)
            .map(|(&id, _)| id)
            .collect();
        for id in stuck {
            let (next, give_up) = {
                let p = self.pending.get_mut(&id).expect("present");
                p.attempts += 1;
                if p.attempts > 5 || self.backends.is_empty() {
                    (None, true)
                } else {
                    let b = self.backends[self.rr % self.backends.len()];
                    self.rr += 1;
                    p.backend = b;
                    p.sent_at = now;
                    (Some(b), false)
                }
            };
            if give_up {
                self.pending.remove(&id);
            } else if let Some(b) = next {
                out.send(b, DiscMsg::BackendReq { id });
            }
        }
    }

    fn on_message(&mut self, from: Endpoint, msg: DiscMsg, now: u64, out: &mut Outbox<DiscMsg>) {
        match &msg {
            DiscMsg::Request { id } => {
                if now < self.reloading_until || self.backends.is_empty() {
                    self.queued.push((from, *id));
                } else {
                    self.dispatch(from, *id, now, out);
                }
            }
            DiscMsg::BackendResp { id } => {
                if let Some(p) = self.pending.remove(id) {
                    out.send(p.client, DiscMsg::Response { id: *id });
                }
            }
            DiscMsg::Swim(_) | DiscMsg::Rapid(_) => {
                self.membership.on_message(from, &msg, now, out);
                self.refresh_backends(now);
            }
            _ => {}
        }
    }

    fn msg_size(msg: &DiscMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        Some(self.backends.len() as f64)
    }
}


/// A backend web server hosting its membership agent.
pub struct BackendServer {
    membership: MemberStack,
}

impl BackendServer {
    /// Creates a backend with the given membership stack.
    pub fn new(membership: MemberStack) -> Self {
        BackendServer { membership }
    }
}

impl Actor for BackendServer {
    type Msg = DiscMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DiscMsg>) {
        self.membership.tick(now, out);
    }

    fn on_message(&mut self, from: Endpoint, msg: DiscMsg, now: u64, out: &mut Outbox<DiscMsg>) {
        match &msg {
            DiscMsg::BackendReq { id } => {
                // Serve the static page with ~1 ms of service time.
                out.send_delayed(from, DiscMsg::BackendResp { id: *id }, 1);
            }
            _ => {
                self.membership.on_message(from, &msg, now, out);
            }
        }
    }

    fn msg_size(msg: &DiscMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        None
    }
}

/// The open-loop request generator (the paper offers 1000 req/s).
pub struct RequestGen {
    lb: Endpoint,
    per_tick: u64,
    next_id: u64,
    sent_at: HashMap<u64, u64>,
    /// `(start_ms, latency_ms)` per completed request.
    pub latencies: Vec<(u64, u64)>,
    start_at: u64,
}

impl RequestGen {
    /// Creates a generator sending `per_tick` requests every tick,
    /// starting at `start_at`.
    pub fn new(lb: Endpoint, per_tick: u64, start_at: u64) -> Self {
        RequestGen {
            lb,
            per_tick,
            next_id: 1,
            sent_at: HashMap::new(),
            latencies: Vec::new(),
            start_at,
        }
    }
}

impl Actor for RequestGen {
    type Msg = DiscMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DiscMsg>) {
        if now < self.start_at {
            return;
        }
        for _ in 0..self.per_tick {
            let id = self.next_id;
            self.next_id += 1;
            self.sent_at.insert(id, now);
            out.send(self.lb, DiscMsg::Request { id });
        }
    }

    fn on_message(&mut self, _from: Endpoint, msg: DiscMsg, now: u64, _out: &mut Outbox<DiscMsg>) {
        if let DiscMsg::Response { id } = msg {
            if let Some(t0) = self.sent_at.remove(&id) {
                self.latencies.push((t0, now - t0));
            }
        }
    }

    fn msg_size(msg: &DiscMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        None
    }
}

/// One process of the discovery world.
pub enum DiscoveryProc {
    /// The load balancer.
    Lb(Box<LoadBalancer>),
    /// A backend.
    Backend(Box<BackendServer>),
    /// The request generator.
    Gen(Box<RequestGen>),
}

impl Actor for DiscoveryProc {
    type Msg = DiscMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<DiscMsg>) {
        match self {
            DiscoveryProc::Lb(x) => x.on_tick(now, out),
            DiscoveryProc::Backend(x) => x.on_tick(now, out),
            DiscoveryProc::Gen(x) => x.on_tick(now, out),
        }
    }

    fn on_message(&mut self, from: Endpoint, msg: DiscMsg, now: u64, out: &mut Outbox<DiscMsg>) {
        match self {
            DiscoveryProc::Lb(x) => x.on_message(from, msg, now, out),
            DiscoveryProc::Backend(x) => x.on_message(from, msg, now, out),
            DiscoveryProc::Gen(x) => x.on_message(from, msg, now, out),
        }
    }

    fn msg_size(msg: &DiscMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        match self {
            DiscoveryProc::Lb(x) => x.sample(),
            _ => None,
        }
    }
}

/// Builds the full Figure-13 world: 1 LB + `n_backends` + 1 generator.
///
/// Actor indices: 0 = LB, `1..=n` = backends, `n+1` = generator.
pub fn build_world(
    n_backends: usize,
    use_rapid: bool,
    req_per_tick: u64,
    seed: u64,
) -> rapid_sim::Simulation<DiscoveryProc> {
    use rapid_core::config::Member;
    use rapid_core::id::NodeId;
    use rapid_core::ring::TopologyCache;
    use rapid_core::settings::Settings;

    let lb_ep = Endpoint::new("lb-0", 80);
    let backend_ep = |i: usize| Endpoint::new(format!("backend-{i}"), 8080);
    let mut sim = rapid_sim::Simulation::new(seed, 100);

    if use_rapid {
        let cache = TopologyCache::new();
        let lb_member = Member::new(NodeId::from_u128(1), lb_ep);
        let lb_node = Node::with_parts(
            lb_member.clone(),
            Settings::default(),
            NodeStatus::Active,
            Configuration::bootstrap(vec![lb_member.clone()]),
            None,
            None,
            Some(cache.clone()),
            Some(seed),
        );
        sim.add_actor(
            lb_ep,
            DiscoveryProc::Lb(Box::new(LoadBalancer::new(
                MemberStack::Rapid(Box::new(lb_node)),
                300,
            ))),
        );
        for i in 0..n_backends {
            let m = Member::with_metadata(
                NodeId::from_u128(100 + i as u128),
                backend_ep(i),
                backend_metadata(),
            );
            let node = Node::with_parts(
                m.clone(),
                Settings::default(),
                NodeStatus::Joining,
                Configuration::bootstrap(Vec::new()),
                Some(vec![lb_ep]),
                None,
                Some(cache.clone()),
                Some(seed + i as u64 + 1),
            );
            sim.add_actor_at(
                backend_ep(i),
                DiscoveryProc::Backend(Box::new(BackendServer::new(MemberStack::Rapid(
                    Box::new(node),
                )))),
                1_000,
            );
        }
    } else {
        let lb_swim = SwimNode::new(lb_ep, vec![], SwimConfig::default(), seed);
        sim.add_actor(
            lb_ep,
            DiscoveryProc::Lb(Box::new(LoadBalancer::new(
                MemberStack::Swim(Box::new(lb_swim)),
                300,
            ))),
        );
        for i in 0..n_backends {
            let node = SwimNode::new(
                backend_ep(i),
                vec![lb_ep],
                SwimConfig::default(),
                seed + i as u64 + 1,
            );
            sim.add_actor_at(
                backend_ep(i),
                DiscoveryProc::Backend(Box::new(BackendServer::new(MemberStack::Swim(
                    Box::new(node),
                )))),
                1_000,
            );
        }
    }
    let gen_ep = Endpoint::new("gen-0", 1);
    sim.add_actor(
        gen_ep,
        DiscoveryProc::Gen(Box::new(RequestGen::new(lb_ep, req_per_tick, 5_000))),
    );
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::Fault;

    fn lb_backends(sim: &rapid_sim::Simulation<DiscoveryProc>) -> usize {
        match sim.actor(0) {
            DiscoveryProc::Lb(lb) => lb.backend_count(),
            _ => unreachable!(),
        }
    }

    fn lb_reloads(sim: &rapid_sim::Simulation<DiscoveryProc>) -> u64 {
        match sim.actor(0) {
            DiscoveryProc::Lb(lb) => lb.reloads,
            _ => unreachable!(),
        }
    }

    fn gen_latencies(sim: &rapid_sim::Simulation<DiscoveryProc>, n: usize) -> Vec<(u64, u64)> {
        match sim.actor(n + 1) {
            DiscoveryProc::Gen(g) => g.latencies.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rapid_world_discovers_all_backends() {
        let mut sim = build_world(20, true, 10, 1);
        let t = sim.run_until_pred(180_000, |s| lb_backends(s) == 20);
        assert!(t.is_some(), "LB must discover all 20 backends via Rapid");
    }

    #[test]
    fn swim_world_discovers_all_backends() {
        let mut sim = build_world(20, false, 10, 2);
        let t = sim.run_until_pred(180_000, |s| lb_backends(s) == 20);
        assert!(t.is_some(), "LB must discover all 20 backends via SWIM");
    }

    #[test]
    fn requests_flow_and_complete() {
        let mut sim = build_world(10, true, 10, 3);
        sim.run_until_pred(180_000, |s| lb_backends(s) == 10);
        sim.run_until(sim.now() + 20_000);
        let lats = gen_latencies(&sim, 10);
        assert!(lats.len() > 1_000, "requests must complete: {}", lats.len());
        let median = {
            let mut v: Vec<u64> = lats.iter().map(|(_, l)| *l).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(median <= 10, "healthy median latency, got {median} ms");
    }

    #[test]
    fn mass_failure_one_reload_with_rapid_many_with_swim() {
        let run = |use_rapid: bool| {
            let mut sim = build_world(30, use_rapid, 10, 4);
            sim.run_until_pred(240_000, |s| lb_backends(s) == 30)
                .expect("bootstrap");
            sim.run_until(sim.now() + 10_000);
            let reloads_before = lb_reloads(&sim);
            // Fail 10 backends at once (backends are actors 1..=30).
            for i in 1..=10 {
                sim.schedule_fault(sim.now() + 100, Fault::Crash(i));
            }
            let converged = sim
                .run_until_pred(sim.now() + 120_000, |s| lb_backends(s) == 20)
                .is_some();
            (lb_reloads(&sim) - reloads_before, converged)
        };
        let (rapid_reloads, rapid_ok) = run(true);
        let (swim_reloads, swim_ok) = run(false);
        assert!(rapid_ok && swim_ok, "both must converge to 20 backends");
        assert!(
            rapid_reloads <= 2,
            "Rapid batches the cut into ~one reload, got {rapid_reloads}"
        );
        assert!(
            swim_reloads >= 3,
            "SWIM staggers removals into several reloads, got {swim_reloads}"
        );
        assert!(swim_reloads > rapid_reloads);
    }
}

#[cfg(test)]
mod lb_unit_tests {
    use super::*;
    use rapid_core::config::Member;
    use rapid_core::node::{Node, NodeStatus};
    use rapid_core::settings::Settings;

    /// A LoadBalancer whose Rapid stack is a solitary active seed (no
    /// backends): requests must queue, not crash.
    fn lonely_lb() -> LoadBalancer {
        let m = Member::new(
            rapid_core::id::NodeId::from_u128(1),
            Endpoint::new("lb-0", 80),
        );
        let node = Node::new_seed(m, Settings::default());
        LoadBalancer::new(MemberStack::Rapid(Box::new(node)), 300)
    }

    #[test]
    fn requests_queue_when_no_backends() {
        let mut lb = lonely_lb();
        let mut out = Outbox { msgs: Vec::new() };
        lb.on_message(
            Endpoint::new("client", 1),
            DiscMsg::Request { id: 7 },
            0,
            &mut out,
        );
        assert!(out.msgs.is_empty(), "nothing to dispatch to");
        assert_eq!(lb.backend_count(), 0);
    }

    #[test]
    fn member_stack_backends_filters_by_role() {
        let members = vec![
            Member::new(rapid_core::id::NodeId::from_u128(1), Endpoint::new("lb-0", 80)),
            Member::with_metadata(
                rapid_core::id::NodeId::from_u128(2),
                Endpoint::new("backend-0", 8080),
                backend_metadata(),
            ),
            Member::with_metadata(
                rapid_core::id::NodeId::from_u128(3),
                Endpoint::new("db-0", 5432),
                Metadata::with_entry("role", "database"),
            ),
        ];
        let cfg = rapid_core::config::Configuration::bootstrap(members.clone());
        let node = Node::with_parts(
            members[0].clone(),
            Settings::default(),
            NodeStatus::Active,
            cfg,
            None,
            None,
            None,
            None,
        );
        let stack = MemberStack::Rapid(Box::new(node));
        let backends = stack.backends();
        assert_eq!(backends, vec![Endpoint::new("backend-0", 8080)]);
    }

    #[test]
    fn backend_metadata_tags_role() {
        assert_eq!(backend_metadata().get_str("role"), Some("backend"));
    }
}
