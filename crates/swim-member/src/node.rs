//! The SWIM protocol state machine.

use std::collections::VecDeque;

use rapid_core::hash::DetHashMap;
use std::sync::Arc;

use rapid_core::id::Endpoint;
use rapid_core::rng::Xoshiro256;
use rapid_sim::{Actor, Outbox};

use crate::state::{merge, msg_size, MemberState, SwimMsg, Update};

/// Memberlist `DefaultLANConfig`-equivalent parameters.
#[derive(Clone, Debug)]
pub struct SwimConfig {
    /// Interval between probes of successive members.
    pub probe_interval_ms: u64,
    /// Direct probe timeout before indirect probes are sent.
    pub probe_timeout_ms: u64,
    /// Number of indirect-probe relays.
    pub indirect_checks: usize,
    /// Suspicion timeout = `suspicion_mult × log10(n+1) × probe_interval`.
    pub suspicion_mult: f64,
    /// Dedicated gossip pump interval.
    pub gossip_interval_ms: u64,
    /// Peers gossiped to per pump.
    pub gossip_nodes: usize,
    /// Updates are piggybacked `retransmit_mult × log10(n+1)` times.
    pub retransmit_mult: f64,
    /// Full-state anti-entropy interval (Memberlist: 30 s on LAN).
    pub push_pull_interval_ms: u64,
    /// Maximum piggybacked updates per packet (UDP MTU budget).
    pub max_piggyback: usize,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            probe_interval_ms: 1_000,
            probe_timeout_ms: 500,
            indirect_checks: 3,
            suspicion_mult: 4.0,
            gossip_interval_ms: 200,
            gossip_nodes: 3,
            retransmit_mult: 4.0,
            push_pull_interval_ms: 30_000,
            max_piggyback: 32,
        }
    }
}

#[derive(Clone, Debug)]
struct MemberInfo {
    incarnation: u64,
    state: MemberState,
    suspect_since: u64,
}

#[derive(Clone, Debug)]
struct ProbeState {
    target: Endpoint,
    seq: u64,
    indirect_at: u64,
    deadline: u64,
    indirect_sent: bool,
}

/// One SWIM/Memberlist process.
pub struct SwimNode {
    cfg: SwimConfig,
    me: Endpoint,
    incarnation: u64,
    members: DetHashMap<Endpoint, MemberInfo>,
    probe_order: Vec<Endpoint>,
    probe_idx: usize,
    probe: Option<ProbeState>,
    relayed: DetHashMap<u64, Endpoint>,
    piggyback: VecDeque<(Update, u32)>,
    live_count: usize,
    suspect_count: usize,
    seq: u64,
    seeds: Vec<Endpoint>,
    join_retry_at: u64,
    next_probe_at: u64,
    next_gossip_at: u64,
    next_push_pull_at: u64,
    rng: Xoshiro256,
}

impl SwimNode {
    /// Creates a node that joins through `seeds` (empty for the first
    /// seed process itself).
    pub fn new(me: Endpoint, seeds: Vec<Endpoint>, cfg: SwimConfig, rng_seed: u64) -> Self {
        SwimNode {
            cfg,
            me,
            incarnation: 1,
            members: DetHashMap::default(),
            probe_order: Vec::new(),
            probe_idx: 0,
            probe: None,
            relayed: DetHashMap::default(),
            piggyback: VecDeque::new(),
            live_count: 0,
            suspect_count: 0,
            seq: 0,
            seeds,
            join_retry_at: 0,
            next_probe_at: 0,
            next_gossip_at: 0,
            next_push_pull_at: 0,
            rng: Xoshiro256::seed_from_u64(rng_seed ^ 0x5717),
        }
    }

    /// Creates a node that starts as a member of a pre-formed static
    /// cluster: every peer in `peers` is already known Alive, no join
    /// traffic is generated, and probing begins immediately — the
    /// steady-state starting point of the paper's failure experiments
    /// (`topology = "static"` in scenario files).
    pub fn new_static(
        me: Endpoint,
        peers: impl IntoIterator<Item = Endpoint>,
        cfg: SwimConfig,
        rng_seed: u64,
    ) -> Self {
        let mut node = SwimNode::new(me, Vec::new(), cfg, rng_seed);
        for addr in peers {
            if addr == me || node.members.contains_key(&addr) {
                continue;
            }
            node.members.insert(
                addr,
                MemberInfo {
                    incarnation: 1,
                    state: MemberState::Alive,
                    suspect_since: 0,
                },
            );
            node.live_count += 1;
            node.probe_order.push(addr);
        }
        node
    }

    /// The number of members this node currently believes are in the
    /// cluster (alive + suspect, including itself) — what a Memberlist
    /// agent logs as the cluster size.
    pub fn cluster_size(&self) -> usize {
        1 + self.live_count
    }

    /// The addresses of all members currently considered live or suspect
    /// (excluding this node itself), sorted.
    pub fn live_members(&self) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> = self
            .members
            .iter()
            .filter(|(_, m)| m.state != MemberState::Dead)
            .map(|(a, _)| *a)
            .collect();
        v.sort();
        v
    }

    /// Whether `addr` is currently considered a live (or suspect) member.
    pub fn considers_member(&self, addr: &Endpoint) -> bool {
        self.members
            .get(addr)
            .map(|m| m.state != MemberState::Dead)
            .unwrap_or(false)
    }

    /// This node's incarnation number (grows with each refutation).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn n(&self) -> usize {
        self.cluster_size()
    }

    fn retransmit_limit(&self) -> u32 {
        (self.cfg.retransmit_mult * ((self.n() + 1) as f64).log10()).ceil() as u32 + 1
    }

    fn suspicion_timeout(&self) -> u64 {
        let factor = ((self.n() + 1) as f64).log10().max(1.0);
        (self.cfg.suspicion_mult * factor * self.cfg.probe_interval_ms as f64) as u64
    }

    fn queue_update(&mut self, update: Update) {
        let limit = self.retransmit_limit();
        self.piggyback.push_back((update, limit));
    }

    fn take_piggyback(&mut self) -> Arc<Vec<Update>> {
        // Pop up to a packet's worth from the front and rotate surviving
        // items to the back, so every item is transmitted `limit` times in
        // FIFO order at O(packet) cost per call (a full-queue rebuild here
        // is quadratic during bootstrap churn).
        let count = self.cfg.max_piggyback.min(self.piggyback.len());
        let mut batch = Vec::with_capacity(count);
        for _ in 0..count {
            let (u, remaining) = self.piggyback.pop_front().expect("count bounded");
            batch.push(u.clone());
            if remaining > 1 {
                self.piggyback.push_back((u, remaining - 1));
            }
        }
        Arc::new(batch)
    }

    fn full_state(&self) -> Arc<Vec<Update>> {
        let mut v: Vec<Update> = self
            .members
            .iter()
            .map(|(addr, m)| Update {
                addr: *addr,
                incarnation: m.incarnation,
                state: m.state,
            })
            .collect();
        v.push(Update {
            addr: self.me,
            incarnation: self.incarnation,
            state: MemberState::Alive,
        });
        Arc::new(v)
    }

    fn apply_update(&mut self, u: &Update, now: u64) {
        if u.addr == self.me {
            // Refutation: if someone accuses us, assert a higher
            // incarnation and gossip it.
            if u.state != MemberState::Alive && u.incarnation >= self.incarnation {
                self.incarnation = u.incarnation + 1;
                let refute = Update {
                    addr: self.me,
                    incarnation: self.incarnation,
                    state: MemberState::Alive,
                };
                self.queue_update(refute);
            }
            return;
        }
        match self.members.get_mut(&u.addr) {
            None => {
                if u.state == MemberState::Dead {
                    return; // Don't learn about members only to bury them.
                }
                self.members.insert(
                    u.addr,
                    MemberInfo {
                        incarnation: u.incarnation,
                        state: u.state,
                        suspect_since: now,
                    },
                );
                self.live_count += 1;
                if u.state == MemberState::Suspect {
                    self.suspect_count += 1;
                }
                self.probe_order.push(u.addr);
                self.queue_update(u.clone());
            }
            Some(info) => {
                let merged = merge((info.incarnation, info.state), (u.incarnation, u.state));
                if merged != (info.incarnation, info.state) {
                    if merged.1 == MemberState::Suspect && info.state != MemberState::Suspect {
                        info.suspect_since = now;
                    }
                    match (info.state, merged.1) {
                        (MemberState::Suspect, s) if s != MemberState::Suspect => {
                            self.suspect_count -= 1;
                        }
                        (s, MemberState::Suspect) if s != MemberState::Suspect => {
                            self.suspect_count += 1;
                        }
                        _ => {}
                    }
                    if info.state != MemberState::Dead && merged.1 == MemberState::Dead {
                        self.live_count -= 1;
                    } else if info.state == MemberState::Dead && merged.1 != MemberState::Dead {
                        self.live_count += 1;
                    }
                    info.incarnation = merged.0;
                    info.state = merged.1;
                    self.queue_update(u.clone());
                }
            }
        }
    }

    fn apply_all(&mut self, updates: &[Update], now: u64) {
        for u in updates {
            self.apply_update(u, now);
        }
    }

    fn accuse(&mut self, target: Endpoint, now: u64) {
        let Some(info) = self.members.get(&target) else {
            return;
        };
        if info.state != MemberState::Alive {
            return;
        }
        let u = Update {
            addr: target,
            incarnation: info.incarnation,
            state: MemberState::Suspect,
        };
        self.apply_update(&u, now);
    }

    fn declare_dead(&mut self, target: Endpoint, now: u64) {
        let Some(info) = self.members.get(&target) else {
            return;
        };
        let u = Update {
            addr: target,
            incarnation: info.incarnation,
            state: MemberState::Dead,
        };
        self.apply_update(&u, now);
    }

    fn next_probe_target(&mut self) -> Option<Endpoint> {
        // Round-robin over a shuffled order, skipping dead entries.
        for _ in 0..self.probe_order.len().max(1) {
            if self.probe_idx >= self.probe_order.len() {
                self.probe_idx = 0;
                let mut order = self.probe_order.clone();
                self.rng.shuffle(&mut order);
                self.probe_order = order;
                if self.probe_order.is_empty() {
                    return None;
                }
            }
            let candidate = self.probe_order[self.probe_idx];
            self.probe_idx += 1;
            if self
                .members
                .get(&candidate)
                .map(|m| m.state != MemberState::Dead)
                .unwrap_or(false)
            {
                return Some(candidate);
            }
        }
        None
    }

    fn random_members(&mut self, count: usize, exclude: Option<&Endpoint>) -> Vec<Endpoint> {
        // Rejection-sample from the ever-seen list; live members dominate
        // it in practice, so this avoids materialising a candidate vector
        // on every gossip round.
        if self.probe_order.is_empty() || self.live_count == 0 {
            return Vec::new();
        }
        let mut picked = Vec::with_capacity(count);
        let mut attempts = 0;
        while picked.len() < count && attempts < count * 8 + 16 {
            attempts += 1;
            let cand = &self.probe_order[self.rng.gen_index(self.probe_order.len())];
            if Some(cand) == exclude || picked.contains(cand) {
                continue;
            }
            if self
                .members
                .get(cand)
                .map(|m| m.state != MemberState::Dead)
                .unwrap_or(false)
            {
                picked.push(*cand);
            }
        }
        picked
    }
}

impl Actor for SwimNode {
    type Msg = SwimMsg;

    fn on_tick(&mut self, now: u64, out: &mut Outbox<SwimMsg>) {
        // Join through a seed until we know somebody.
        if self.members.is_empty() {
            if !self.seeds.is_empty() && now >= self.join_retry_at {
                self.join_retry_at = now + 2_000;
                let seed = self.seeds[self.rng.gen_index(self.seeds.len())];
                if seed != self.me {
                    out.send(
                        seed,
                        SwimMsg::PushPull {
                            state: self.full_state(),
                            reply: true,
                        },
                    );
                }
            }
            return;
        }

        // Drive the outstanding probe.
        if let Some(probe) = self.probe.clone() {
            if !probe.indirect_sent && now >= probe.indirect_at {
                if let Some(p) = &mut self.probe {
                    p.indirect_sent = true;
                }
                let relays = self.random_members(self.cfg.indirect_checks, Some(&probe.target));
                let updates = self.take_piggyback();
                for r in relays {
                    out.send(
                        r,
                        SwimMsg::PingReq {
                            seq: probe.seq,
                            target: probe.target,
                            updates: Arc::clone(&updates),
                        },
                    );
                }
            }
            if now >= probe.deadline {
                self.probe = None;
                self.accuse(probe.target, now);
            }
        }

        // Issue the next probe.
        if self.probe.is_none() && now >= self.next_probe_at {
            self.next_probe_at = now + self.cfg.probe_interval_ms;
            if let Some(target) = self.next_probe_target() {
                self.seq += 1;
                let seq = self.seq;
                self.probe = Some(ProbeState {
                    target,
                    seq,
                    indirect_at: now + self.cfg.probe_timeout_ms,
                    deadline: now + self.cfg.probe_interval_ms,
                    indirect_sent: false,
                });
                let updates = self.take_piggyback();
                out.send(target, SwimMsg::Ping { seq, updates });
            }
        }

        // Suspicion timeouts (scan only while suspects exist).
        let timeout = self.suspicion_timeout();
        let expired: Vec<Endpoint> = if self.suspect_count == 0 {
            Vec::new()
        } else {
            self.members
            .iter()
            .filter(|(_, m)| {
                m.state == MemberState::Suspect && now.saturating_sub(m.suspect_since) >= timeout
            })
            .map(|(a, _)| *a)
            .collect()
        };
        for target in expired {
            self.declare_dead(target, now);
        }

        // Dedicated gossip pump.
        if now >= self.next_gossip_at {
            self.next_gossip_at = now + self.cfg.gossip_interval_ms;
            if !self.piggyback.is_empty() {
                let updates = self.take_piggyback();
                for peer in self.random_members(self.cfg.gossip_nodes, None) {
                    out.send(
                        peer,
                        SwimMsg::PushPull {
                            state: Arc::clone(&updates),
                            reply: false,
                        },
                    );
                }
            }
        }

        // Periodic full-state anti-entropy.
        if now >= self.next_push_pull_at {
            self.next_push_pull_at = now + self.cfg.push_pull_interval_ms;
            if let Some(peer) = self.random_members(1, None).pop() {
                out.send(
                    peer,
                    SwimMsg::PushPull {
                        state: self.full_state(),
                        reply: true,
                    },
                );
            }
        }

        // Garbage-collect relay bookkeeping (coarse).
        if self.relayed.len() > 1024 {
            self.relayed.clear();
        }
    }

    fn on_message(&mut self, from: Endpoint, msg: SwimMsg, now: u64, out: &mut Outbox<SwimMsg>) {
        match msg {
            SwimMsg::Ping { seq, updates } => {
                self.apply_all(&updates, now);
                let reply_updates = self.take_piggyback();
                out.send(
                    from,
                    SwimMsg::Ack {
                        seq,
                        updates: reply_updates,
                    },
                );
            }
            SwimMsg::Ack { seq, updates } => {
                self.apply_all(&updates, now);
                if let Some(origin) = self.relayed.remove(&seq) {
                    out.send(origin, SwimMsg::IndirectAck { seq, target: from });
                } else if let Some(probe) = &self.probe {
                    if probe.seq == seq && probe.target == from {
                        self.probe = None;
                    }
                }
            }
            SwimMsg::PingReq {
                seq,
                target,
                updates,
            } => {
                self.apply_all(&updates, now);
                self.relayed.insert(seq, from);
                let relay_updates = self.take_piggyback();
                out.send(
                    target,
                    SwimMsg::RelayPing {
                        seq,
                        origin: from,
                        updates: relay_updates,
                    },
                );
            }
            SwimMsg::RelayPing { seq, updates, .. } => {
                self.apply_all(&updates, now);
                let reply_updates = self.take_piggyback();
                out.send(
                    from,
                    SwimMsg::Ack {
                        seq,
                        updates: reply_updates,
                    },
                );
            }
            SwimMsg::IndirectAck { seq, target } => {
                if let Some(probe) = &self.probe {
                    if probe.seq == seq && probe.target == target {
                        self.probe = None;
                    }
                }
            }
            SwimMsg::PushPull { state, reply } => {
                self.apply_all(&state, now);
                if reply {
                    out.send(
                        from,
                        SwimMsg::PushPull {
                            state: self.full_state(),
                            reply: false,
                        },
                    );
                }
            }
        }
    }

    fn msg_size(msg: &SwimMsg) -> usize {
        msg_size(msg)
    }

    fn sample(&self) -> Option<f64> {
        if self.members.is_empty() && !self.seeds.is_empty() {
            None // Not yet joined.
        } else {
            Some(self.cluster_size() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_sim::{Fault, Simulation};

    fn ep(i: usize) -> Endpoint {
        Endpoint::new(format!("swim-{i}"), 7000)
    }

    /// Builds a SWIM cluster: node 0 is the seed, the rest join at 1 s.
    fn cluster(n: usize, seed: u64) -> Simulation<SwimNode> {
        let mut sim = Simulation::new(seed, 100);
        sim.add_actor(ep(0), SwimNode::new(ep(0), vec![], SwimConfig::default(), seed));
        for i in 1..n {
            sim.add_actor_at(
                ep(i),
                SwimNode::new(ep(i), vec![ep(0)], SwimConfig::default(), seed + i as u64),
                1_000,
            );
        }
        sim
    }

    fn all_sizes(sim: &Simulation<SwimNode>) -> Vec<usize> {
        (0..sim.len())
            .filter(|&i| !sim.net.is_crashed(i))
            .map(|i| sim.actor(i).cluster_size())
            .collect()
    }

    #[test]
    fn cluster_bootstraps_to_full_view() {
        let mut sim = cluster(20, 1);
        let t = sim.run_until_pred(120_000, |s| all_sizes(s).iter().all(|&x| x == 20));
        assert!(t.is_some(), "SWIM must converge to 20");
    }

    #[test]
    fn crashed_member_is_suspected_then_removed() {
        let mut sim = cluster(15, 2);
        assert!(sim
            .run_until_pred(120_000, |s| all_sizes(s).iter().all(|&x| x == 15))
            .is_some());
        sim.schedule_fault(sim.now() + 500, Fault::Crash(7));
        let t = sim.run_until_pred(sim.now() + 120_000, |s| {
            all_sizes(s).iter().all(|&x| x == 14)
        });
        assert!(t.is_some(), "survivors must drop the crashed member");
    }

    #[test]
    fn suspected_live_member_refutes_and_survives() {
        let mut sim = cluster(10, 3);
        assert!(sim
            .run_until_pred(120_000, |s| all_sizes(s).iter().all(|&x| x == 10))
            .is_some());
        // 60% ingress loss: probes often fail, suspicion cycles begin, but
        // the member's egress works so refutations get out.
        sim.schedule_fault(sim.now() + 100, Fault::IngressDrop(4, 0.6));
        sim.run_until(sim.now() + 60_000);
        assert!(
            sim.actor(4).incarnation() > 1,
            "the accused must have refuted at least once"
        );
        // It must still be a member somewhere (refutations work), even if
        // views flap — this is the instability of Figure 1.
        let still_member = (0..sim.len())
            .filter(|&i| i != 4)
            .filter(|&i| sim.actor(i).considers_member(&ep(4)))
            .count();
        assert!(still_member > 0, "refutation must keep the node around");
    }

    #[test]
    fn updates_stop_being_piggybacked_after_retransmit_budget() {
        let mut node = SwimNode::new(ep(0), vec![], SwimConfig::default(), 1);
        let u = Update {
            addr: ep(1),
            incarnation: 1,
            state: MemberState::Alive,
        };
        node.apply_update(&u, 0);
        let limit = node.retransmit_limit() as usize;
        let mut total = 0;
        for _ in 0..limit + 5 {
            total += node.take_piggyback().len();
        }
        assert_eq!(total, limit, "update relayed exactly `limit` times");
    }

    #[test]
    fn dead_updates_do_not_introduce_members() {
        let mut node = SwimNode::new(ep(0), vec![], SwimConfig::default(), 1);
        node.apply_update(
            &Update {
                addr: ep(9),
                incarnation: 3,
                state: MemberState::Dead,
            },
            0,
        );
        assert_eq!(node.cluster_size(), 1);
    }
}
