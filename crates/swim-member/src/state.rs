//! SWIM membership state, update precedence rules, and wire messages.

use std::sync::Arc;

use rapid_core::id::Endpoint;

/// The lifecycle state of a member as seen by some process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemberState {
    /// Believed healthy.
    Alive,
    /// Accused; will be declared dead unless refuted in time.
    Suspect,
    /// Declared failed.
    Dead,
}

/// A disseminated membership update (the SWIM "gossip" unit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Update {
    /// The member the update is about.
    pub addr: Endpoint,
    /// The member's incarnation number at the time of the update.
    pub incarnation: u64,
    /// The asserted state.
    pub state: MemberState,
}

/// Applies SWIM's update precedence rules: returns the winning
/// `(incarnation, state)` given the current and incoming values.
///
/// Higher incarnations always win; at equal incarnation the stronger
/// accusation wins (`Dead > Suspect > Alive`).
pub fn merge(
    current: (u64, MemberState),
    incoming: (u64, MemberState),
) -> (u64, MemberState) {
    use std::cmp::Ordering;
    match incoming.0.cmp(&current.0) {
        Ordering::Greater => incoming,
        Ordering::Less => current,
        Ordering::Equal => {
            if incoming.1 > current.1 {
                incoming
            } else {
                current
            }
        }
    }
}

/// SWIM wire messages.
#[derive(Clone, Debug)]
pub enum SwimMsg {
    /// Direct probe; carries piggybacked updates.
    Ping {
        /// Sequence number echoed by the ack.
        seq: u64,
        /// Piggybacked membership updates.
        updates: Arc<Vec<Update>>,
    },
    /// Probe acknowledgement.
    Ack {
        /// Echoed sequence number.
        seq: u64,
        /// Piggybacked membership updates.
        updates: Arc<Vec<Update>>,
    },
    /// Ask a relay to probe `target` on our behalf.
    PingReq {
        /// Sequence number, echoed end-to-end.
        seq: u64,
        /// The suspected member to probe.
        target: Endpoint,
        /// Piggybacked membership updates.
        updates: Arc<Vec<Update>>,
    },
    /// Relay-internal probe on behalf of `origin`.
    RelayPing {
        /// Sequence number of the original ping-req.
        seq: u64,
        /// Who asked for the indirect probe.
        origin: Endpoint,
        /// Piggybacked membership updates.
        updates: Arc<Vec<Update>>,
    },
    /// Relay forwarding the target's ack back to the origin.
    IndirectAck {
        /// Echoed sequence number.
        seq: u64,
        /// The member that answered.
        target: Endpoint,
    },
    /// Push-pull anti-entropy request carrying full local state.
    PushPull {
        /// `(member, incarnation, state)` triples for the whole view.
        state: Arc<Vec<Update>>,
        /// Whether the receiver should reply with its own state.
        reply: bool,
    },
}

/// Approximate encoded size in bytes (endpoint strings + tags), used for
/// bandwidth accounting on the shared simulator substrate.
pub fn msg_size(msg: &SwimMsg) -> usize {
    fn ep(e: &Endpoint) -> usize {
        e.host().len() + 4
    }
    fn updates(u: &[Update]) -> usize {
        u.iter().map(|x| ep(&x.addr) + 9 + 2).sum::<usize>() + 4
    }
    let body = match msg {
        SwimMsg::Ping { updates: u, .. } | SwimMsg::Ack { updates: u, .. } => 8 + updates(u),
        SwimMsg::PingReq {
            target, updates: u, ..
        } => 8 + ep(target) + updates(u),
        SwimMsg::RelayPing {
            origin, updates: u, ..
        } => 8 + ep(origin) + updates(u),
        SwimMsg::IndirectAck { target, .. } => 8 + ep(target),
        SwimMsg::PushPull { state, .. } => 1 + updates(state),
    };
    body + 5 // tag + UDP-ish framing overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_incarnation_wins() {
        assert_eq!(
            merge((3, MemberState::Dead), (4, MemberState::Alive)),
            (4, MemberState::Alive)
        );
        assert_eq!(
            merge((4, MemberState::Alive), (3, MemberState::Dead)),
            (4, MemberState::Alive)
        );
    }

    #[test]
    fn stronger_state_wins_at_equal_incarnation() {
        assert_eq!(
            merge((2, MemberState::Alive), (2, MemberState::Suspect)),
            (2, MemberState::Suspect)
        );
        assert_eq!(
            merge((2, MemberState::Suspect), (2, MemberState::Dead)),
            (2, MemberState::Dead)
        );
        assert_eq!(
            merge((2, MemberState::Dead), (2, MemberState::Alive)),
            (2, MemberState::Dead)
        );
    }

    #[test]
    fn sizes_grow_with_piggyback() {
        let empty = SwimMsg::Ping {
            seq: 1,
            updates: Arc::new(vec![]),
        };
        let loaded = SwimMsg::Ping {
            seq: 1,
            updates: Arc::new(vec![Update {
                addr: Endpoint::new("host-12", 9),
                incarnation: 1,
                state: MemberState::Alive,
            }]),
        };
        assert!(msg_size(&loaded) > msg_size(&empty));
    }
}
