//! A SWIM-style gossip membership implementation, modelled on HashiCorp's
//! Memberlist library (the baseline the paper compares against, §7).
//!
//! The protocol follows Das et al. (DSN 2002) with Memberlist's
//! `DefaultLANConfig` parameters:
//!
//! * round-robin **probing** over a shuffled member order, 1 probe/s with a
//!   500 ms direct timeout;
//! * **indirect probes** through 3 relays when a direct probe times out;
//! * **suspicion** instead of immediate death: a suspect is declared dead
//!   only after `suspicion_mult × log10(n+1)` probe intervals, during which
//!   the accused can *refute* by gossiping a higher incarnation;
//! * **piggybacked dissemination** of membership updates, each relayed
//!   `retransmit_mult × log10(n+1)` times, plus a dedicated gossip pump
//!   (Memberlist gossips every 200 ms to 3 peers over UDP);
//! * periodic **push-pull anti-entropy**: a full state exchange with one
//!   random peer every 30 s — the mechanism responsible for Memberlist's
//!   slow bootstrap convergence in Figure 7.
//!
//! The accusation/refutation cycle is exactly what makes gossip membership
//! unstable under asymmetric faults (Figures 1, 9, 10): a process whose
//! ingress is impaired keeps *sending* suspicions about everyone it can no
//! longer hear, while refuting suspicions about itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod state;

pub use node::{SwimConfig, SwimNode};
pub use state::{MemberState, SwimMsg, Update};
