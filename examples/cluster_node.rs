//! A standalone Rapid cluster agent — run one per terminal to form a real
//! cluster, like the stand-alone agents of the paper's evaluation.
//!
//! ```text
//! # First node (seed):
//! cargo run --release --example cluster_node -- --listen 127.0.0.1:5001
//! # More nodes:
//! cargo run --release --example cluster_node -- \
//!     --listen 127.0.0.1:5002 --join 127.0.0.1:5001 --role backend
//! ```
//!
//! Each agent prints every view change; Ctrl-C a node and watch the
//! others cut it from the membership.

use std::time::Duration;

use rapid::{AppEvent, Endpoint, Metadata, Runtime, Settings};

fn usage() -> ! {
    eprintln!(
        "usage: cluster_node --listen HOST:PORT [--join HOST:PORT]... [--role NAME]"
    );
    std::process::exit(2);
}

fn main() -> std::io::Result<()> {
    let mut listen: Option<Endpoint> = None;
    let mut seeds: Vec<Endpoint> = Vec::new();
    let mut role = String::from("node");
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => {
                i += 1;
                listen = Some(
                    Endpoint::parse(argv.get(i).unwrap_or_else(|| usage()))
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--join" => {
                i += 1;
                seeds.push(
                    Endpoint::parse(argv.get(i).unwrap_or_else(|| usage()))
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--role" => {
                i += 1;
                role = argv.get(i).unwrap_or_else(|| usage()).clone();
            }
            _ => usage(),
        }
        i += 1;
    }
    let listen = listen.unwrap_or_else(|| usage());

    let settings = Settings {
        tick_interval_ms: 50,
        ..Settings::default()
    };
    let node = if seeds.is_empty() {
        println!("starting SEED node on {listen}");
        Runtime::start_seed(listen, settings)?
    } else {
        println!("joining via {seeds:?} from {listen}");
        Runtime::start_joiner(listen, seeds, settings, Metadata::with_entry("role", &role))?
    };
    println!("node id: {}", node.member().id);

    loop {
        match node.events().recv_timeout(Duration::from_secs(5)) {
            Ok(AppEvent::Joined(cfg)) => {
                println!("JOINED configuration {} ({} members)", cfg.id(), cfg.len());
            }
            Ok(AppEvent::View(vc)) => {
                println!(
                    "VIEW CHANGE -> {} ({} members; +{} joined, -{} removed)",
                    vc.configuration.id(),
                    vc.configuration.len(),
                    vc.joined.len(),
                    vc.removed.len()
                );
                for m in vc.configuration.members() {
                    println!(
                        "    {} @ {} [{}]",
                        m.id,
                        m.addr,
                        m.metadata.get_str("role").unwrap_or("seed")
                    );
                }
            }
            Ok(AppEvent::Kicked) => {
                println!("KICKED from the membership; exiting (rejoin with a fresh id)");
                std::process::exit(1);
            }
            Ok(AppEvent::App(from, payload)) => {
                println!("app payload from {from}: {} bytes", payload.len());
            }
            Err(_) => {
                println!(
                    "... {} members in view {}",
                    node.view().len(),
                    node.view().id()
                );
            }
        }
    }
}
