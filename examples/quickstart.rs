//! Quickstart: a real five-node Rapid cluster over TCP on loopback.
//!
//! Starts one seed and four joiners, watches view changes arrive, then
//! crash-kills one node and waits for the cluster to cut it out — all on
//! real sockets via `rapid-transport`.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::{Duration, Instant};

use rapid::{AppEvent, Endpoint, Metadata, Runtime, Settings};

fn main() -> std::io::Result<()> {
    // Snappier timers than the defaults, fine for a LAN/loopback demo.
    let settings = Settings {
        tick_interval_ms: 20,
        fd_probe_interval_ms: 500,
        fd_probe_timeout_ms: 500,
        consensus_fallback_base_ms: 2_000,
        consensus_fallback_jitter_ms: 500,
        join_timeout_ms: 2_000,
        gossip_interval_ms: 100,
        ..Settings::default()
    };

    println!("starting seed...");
    let seed = Runtime::start_seed(Endpoint::new("127.0.0.1", 0), settings.clone())?;
    println!("  seed listening on {}", seed.addr());

    let mut nodes = Vec::new();
    for i in 0..4 {
        let node = Runtime::start_joiner(
            Endpoint::new("127.0.0.1", 0),
            vec![*seed.addr()],
            settings.clone(),
            Metadata::with_entry("role", if i % 2 == 0 { "frontend" } else { "backend" }),
        )?;
        println!("  started joiner {} on {}", i + 1, node.addr());
        nodes.push(node);
    }

    wait(|| seed.view().len() == 5, Duration::from_secs(30));
    println!("\ncluster formed: configuration {}", seed.view().id());
    for m in seed.view().members() {
        println!(
            "  member {} @ {} role={}",
            m.id,
            m.addr,
            m.metadata.get_str("role").unwrap_or("seed")
        );
    }

    // Kill one node without saying goodbye; the K-ring observers will
    // detect it and the cluster decides a 1-node cut by consensus.
    let victim = nodes.pop().unwrap();
    println!("\ncrash-killing {} ...", victim.addr());
    victim.shutdown_now();

    let t0 = Instant::now();
    wait(|| seed.view().len() == 4, Duration::from_secs(60));
    println!(
        "removed after {:.1}s; new configuration {} with {} members",
        t0.elapsed().as_secs_f64(),
        seed.view().id(),
        seed.view().len()
    );

    // Show the view-change events the application would consume.
    while let Ok(ev) = seed.events().try_recv() {
        match ev {
            AppEvent::View(vc) => println!(
                "  view change: +{} -{} -> {} members",
                vc.joined.len(),
                vc.removed.len(),
                vc.configuration.len()
            ),
            AppEvent::Joined(c) => println!("  joined a {}-member cluster", c.len()),
            AppEvent::Kicked => println!("  kicked!"),
            AppEvent::App(from, payload) => {
                println!("  app payload from {from}: {} bytes", payload.len())
            }
        }
    }

    for n in nodes {
        n.leave();
    }
    seed.shutdown_now();
    println!("\ndone.");
    Ok(())
}

fn wait(mut pred: impl FnMut() -> bool, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline && !pred() {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(pred(), "timed out waiting for cluster state");
}
