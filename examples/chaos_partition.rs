//! Chaos demo: asymmetric network failures against a simulated 100-node
//! Rapid cluster (the paper's Figures 9–10 scenarios, condensed).
//!
//! The experiment itself is declarative — `scenarios/chaos_partition.toml`
//! injects, in sequence: a flip-flopping one-way partition, sustained 80%
//! egress loss on a few nodes, and a 10-node crash. This example replays
//! it on the simulator and shows that every surviving node walks through
//! the identical sequence of strongly consistent view changes.
//!
//! Run with: `cargo run --release --example chaos_partition`

use rapid::core::node::NodeStatus;
use rapid::scenario::{runner, Scenario, SimDriver, SystemKind, World};

fn main() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/chaos_partition.toml"
    ))
    .expect("shipped scenario");
    let scenario = Scenario::from_toml(&text).expect("valid scenario");
    println!(
        "starting a steady {}-node Rapid cluster, then phases {:?}...",
        scenario.n,
        scenario.phases.iter().map(|p| p.name.as_str()).collect::<Vec<_>>()
    );

    let mut driver = SimDriver::new(SystemKind::Rapid, &scenario).expect("sim driver");
    let report = runner::run(&scenario, &mut driver).expect("scenario run");

    for phase in &report.phases {
        println!(
            "[{}] ran {} s, cumulative view changes: {}",
            phase.name,
            (phase.end_ms - phase.start_ms) / 1_000,
            phase.view_changes.unwrap_or(0),
        );
    }
    report_sizes(driver.world());

    // Strong consistency: every active node installed the same sequence
    // of configurations. (The scenario's consistent_histories expectation
    // asserts the same; re-derive it here to show the raw data.)
    let World::Rapid(sim) = driver.world() else {
        unreachable!("rapid world")
    };
    let mut histories = Vec::new();
    for i in 0..scenario.n {
        if sim.net.is_crashed(i) {
            continue;
        }
        if let Some(node) = sim.actor(i).as_node() {
            if node.status() == NodeStatus::Active {
                histories.push(node.view_history().to_vec());
            }
        }
    }
    let longest = histories.iter().map(|h| h.len()).max().unwrap();
    let agree = histories
        .windows(2)
        .all(|w| w[0].iter().zip(w[1].iter()).all(|(a, b)| a == b));
    println!(
        "\nview histories: {} active nodes, {} view changes, prefixes agree: {agree}",
        histories.len(),
        longest - 1
    );
    assert!(agree, "strong consistency must hold");
    assert!(report.passed, "scenario expectations must hold: {:?}", report.failures());
}

fn report_sizes(world: &World) {
    let mut sizes = std::collections::BTreeMap::new();
    let mut active = 0;
    for v in world.observations().into_iter().flatten() {
        *sizes.entry(v as usize).or_insert(0usize) += 1;
        active += 1;
    }
    println!("  {active} active nodes; views: {sizes:?}");
}
