//! Chaos demo: asymmetric network failures against a simulated 100-node
//! Rapid cluster (the paper's Figures 9–10 scenarios, condensed).
//!
//! Injects, in sequence: a flip-flopping one-way partition, sustained 80%
//! egress loss on a few nodes, and a 10-node crash — and shows that every
//! surviving node walks through the identical sequence of strongly
//! consistent view changes.
//!
//! Run with: `cargo run --release --example chaos_partition`

use rapid::core::node::NodeStatus;
use rapid::sim::cluster::{all_report, RapidClusterBuilder};
use rapid::sim::{Actor, Fault};

fn main() {
    let n = 100;
    println!("starting a steady {n}-node Rapid cluster...");
    let mut sim = RapidClusterBuilder::new(n).seed(23).build_static();
    sim.run_until(5_000);
    assert!(all_report(&sim, n));

    println!("\n[1] flip-flop one-way partition on nodes 0-1 (20s on/off x3)");
    for cycle in 0..3u64 {
        let t = sim.now() + cycle * 40_000;
        for i in 0..2 {
            sim.schedule_fault(t, Fault::IngressDrop(i, 1.0));
            sim.schedule_fault(t + 20_000, Fault::IngressDrop(i, 0.0));
        }
    }
    sim.run_until(sim.now() + 130_000);
    report(&sim, n);

    println!("\n[2] sustained 80% egress loss on nodes 10-12");
    for i in 10..13 {
        sim.schedule_fault(sim.now(), Fault::EgressDrop(i, 0.8));
    }
    sim.run_until(sim.now() + 120_000);
    report(&sim, n);

    println!("\n[3] crash 10 nodes at once");
    for i in 20..30 {
        sim.schedule_fault(sim.now(), Fault::Crash(i));
    }
    sim.run_until(sim.now() + 60_000);
    report(&sim, n);

    // Strong consistency: every active node installed the same sequence
    // of configurations.
    let mut histories = Vec::new();
    for i in 0..n {
        if sim.net.is_crashed(i) {
            continue;
        }
        if let Some(node) = sim.actor(i).as_node() {
            if node.status() == NodeStatus::Active {
                histories.push(node.view_history().to_vec());
            }
        }
    }
    let longest = histories.iter().map(|h| h.len()).max().unwrap();
    let agree = histories
        .windows(2)
        .all(|w| w[0].iter().zip(w[1].iter()).all(|(a, b)| a == b));
    println!(
        "\nview histories: {} active nodes, {} view changes, prefixes agree: {agree}",
        histories.len(),
        longest - 1
    );
    assert!(agree, "strong consistency must hold");
}

fn report(sim: &rapid::sim::Simulation<rapid::sim::RapidActor>, n: usize) {
    let mut sizes = std::collections::BTreeMap::new();
    let mut active = 0;
    for i in 0..n {
        if sim.net.is_crashed(i) {
            continue;
        }
        if let Some(v) = sim.actor(i).sample() {
            *sizes.entry(v as usize).or_insert(0usize) += 1;
            active += 1;
        }
    }
    println!("  {active} active nodes; views: {sizes:?}");
}
