//! The transactional data platform integration (the paper's Figure 12).
//!
//! Sixteen data servers order transactions through a single serialization
//! server; a packet blackhole is injected between the serializer and one
//! data server. With the legacy all-to-all failure detector, the
//! serializer is repeatedly accused and failed over; with Rapid, the bad
//! link stays below the L watermark and nothing happens.
//!
//! Run with: `cargo run --release --example transactional_platform`

use rapid::dataplatform::world::{all_latencies, build_world, total_failovers};
use rapid::sim::series::{mean, percentile};
use rapid::sim::Fault;

fn main() {
    for rapid_membership in [false, true] {
        let label = if rapid_membership {
            "Rapid membership"
        } else {
            "baseline all-to-all FD"
        };
        println!("=== {label} ===");
        let mut sim = build_world(16, 4, rapid_membership, 1_000, 11);
        sim.run_until(10_000);
        // The blackhole of the paper: serializer (dp-00) <-> data server.
        sim.schedule_fault(10_000, Fault::BlackholePair(0, 5));
        sim.run_until(70_000);

        let lats = all_latencies(&sim, 16);
        let window: Vec<f64> = lats
            .iter()
            .filter(|(t, _)| *t >= 10_000)
            .map(|(_, l)| *l as f64)
            .collect();
        let throughput = window.len() as f64 / 60.0;
        println!("  committed transactions : {}", window.len());
        println!("  throughput             : {throughput:.0} txn/s");
        println!(
            "  latency mean/p99/max   : {:.1} / {:.1} / {:.0} ms",
            mean(&window),
            percentile(&window, 99.0),
            percentile(&window, 100.0)
        );
        println!(
            "  serializer failovers   : {}",
            total_failovers(&sim, 16).saturating_sub(1) // minus bootstrap election
        );
        println!();
    }
    println!("the paper reports a 32% throughput drop with the baseline detector;");
    println!("run `cargo run --release -p bench --bin fig12_dataplatform` for CSV output.");
}
