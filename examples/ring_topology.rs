//! Prints a node's K-ring neighbourhood (the paper's Figure 2) and the
//! expander statistics of the monitoring overlay (§8).
//!
//! Run with: `cargo run --release --example ring_topology`

use rapid::core::config::{Configuration, Member};
use rapid::core::ring::Topology;
use rapid::{Endpoint, NodeId};
use rapid::spectral::{detection_bound, MonitoringGraph};

fn main() {
    let n = 10u128;
    let k = 4;
    let members: Vec<Member> = (1..=n)
        .map(|i| Member::new(NodeId::from_u128(i), Endpoint::new(format!("p{i}"), 5000)))
        .collect();
    let cfg = Configuration::bootstrap(members);
    let topo = Topology::build(&cfg, k);

    println!("K = {k} rings over {n} processes (configuration {}):\n", cfg.id());
    let p = 0u32;
    println!("process {} ({})", p, cfg.member_at(p as usize).addr);
    println!("  observers (who monitors p):");
    for e in topo.observers_of(p) {
        println!(
            "    ring {}: {}",
            e.ring,
            cfg.member_at(e.rank as usize).addr
        );
    }
    println!("  subjects (whom p monitors):");
    for e in topo.subjects_of(p) {
        println!(
            "    ring {}: {}",
            e.ring,
            cfg.member_at(e.rank as usize).addr
        );
    }

    // Where would a joiner's temporary observers land?
    let joiner = NodeId::from_u128(999);
    println!("\ntemporary observers for joiner {joiner}:");
    for e in topo.joiner_observers(cfg.id(), joiner) {
        println!(
            "    ring {}: {}",
            e.ring,
            cfg.member_at(e.rank as usize).addr
        );
    }

    // Expansion at the paper's parameters.
    println!("\nexpansion of the K=10 overlay (paper §8, λ/d < 0.45):");
    for size in [100u128, 500, 1000] {
        let members: Vec<Member> = (1..=size)
            .map(|i| Member::new(NodeId::from_u128(i), Endpoint::new(format!("m{i}"), 1)))
            .collect();
        let cfg = Configuration::bootstrap(members);
        let g = MonitoringGraph::build(&cfg, 10);
        let ratio = g.lambda_over_d(600, 7).unwrap();
        println!(
            "  n={size:5}: λ/d = {ratio:.4}  -> guaranteed detection of any cut up to {:.0}% of the cluster (L=3)",
            detection_bound(3, 10, ratio) * 100.0
        );
    }
}
