//! Service discovery (the paper's Figure 13 scenario, as a demo).
//!
//! A load balancer discovers 30 backends through Rapid, an open-loop
//! generator offers requests, and 10 backends are crash-failed at once.
//! Rapid detects the whole group as one multi-process cut, so the load
//! balancer reloads its configuration exactly once.
//!
//! Run with: `cargo run --release --example service_discovery`

use rapid::discovery::{build_world, DiscoveryProc};
use rapid::sim::Fault;

fn main() {
    let backends = 30;
    println!("bootstrapping: LB + {backends} backends joining via Rapid...");
    let mut sim = build_world(backends, true, 20, 7);
    let t = sim
        .run_until_pred(600_000, |s| match s.actor(0) {
            DiscoveryProc::Lb(lb) => lb.backend_count() == backends,
            _ => false,
        })
        .expect("discovery must complete");
    println!("  all {backends} backends in rotation at t={:.0}s", t as f64 / 1000.0);

    // Serve traffic for a while, then fail 10 backends simultaneously.
    sim.run_until(sim.now() + 10_000);
    let reloads_before = lb(&sim).reloads;
    let fail_at = sim.now();
    println!("\nfailing 10 backends at t={:.0}s ...", fail_at as f64 / 1000.0);
    for i in 1..=10 {
        sim.schedule_fault(fail_at, Fault::Crash(i));
    }
    sim.run_until(fail_at + 60_000);

    let reloads = lb(&sim).reloads - reloads_before;
    println!(
        "  LB rotation now has {} backends after {} config reload(s)",
        lb(&sim).backend_count(),
        reloads
    );

    // Latency report around the failure.
    if let DiscoveryProc::Gen(g) = sim.actor(backends + 1) {
        let mut before: Vec<f64> = Vec::new();
        let mut after: Vec<f64> = Vec::new();
        for (t, l) in &g.latencies {
            if *t < fail_at {
                before.push(*l as f64);
            } else {
                after.push(*l as f64);
            }
        }
        let p = |v: &[f64], q| rapid::sim::series::percentile(v, q);
        println!("\nrequest latency (ms):");
        println!(
            "  before failure: p50={:.1} p99={:.1} max={:.0}",
            p(&before, 50.0),
            p(&before, 99.0),
            p(&before, 100.0)
        );
        println!(
            "  after failure:  p50={:.1} p99={:.1} max={:.0}",
            p(&after, 50.0),
            p(&after, 99.0),
            p(&after, 100.0)
        );
    }
    println!("\nwith Serf/Memberlist the same scenario causes several reloads;");
    println!("run `cargo run --release -p bench --bin fig13_discovery` to compare.");
}

fn lb(sim: &rapid::sim::Simulation<DiscoveryProc>) -> &rapid::discovery::LoadBalancer {
    match sim.actor(0) {
        DiscoveryProc::Lb(lb) => lb,
        _ => unreachable!(),
    }
}
